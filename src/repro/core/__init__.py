"""The paper's contribution layer: optimized VQE execution.

Post-ansatz state caching (§4.1), direct/caching/sampling estimation
strategies (§4.2), the VQE and ADAPT-VQE drivers (§3.1, §5.3),
resource counting for the scaling figures (Figs. 1, 3), and the
end-to-end Fig. 2 workflow.
"""

from repro.core.adapt import AdaptIteration, AdaptResult, AdaptState, AdaptVQE
from repro.core.campaign import CampaignFailedError, CampaignResult, CampaignRunner
from repro.core.cache import CachedEnergyEvaluator, GateLedger, PostAnsatzCache
from repro.core.counting import (
    EnergyEvaluationCost,
    energy_evaluation_gate_counts,
    jw_basis_change_gates,
    jw_pauli_term_count,
    statevector_memory_bytes,
    uccsd_gate_count,
)
from repro.core.estimator import (
    CachingEstimator,
    DirectEstimator,
    Estimator,
    SamplingEstimator,
    make_estimator,
)
from repro.core.cafqa import CafqaResult, cafqa_bootstrap_vqe, cafqa_search
from repro.core.qpe import QPEResult, run_iterative_qpe, run_qpe, run_qpe_trotter
from repro.core.scan import ScanPoint, ScanResult, scan_potential_energy_surface
from repro.core.shots import allocate_shots, sampled_energy_with_allocation
from repro.core.vqd import VQDResult, run_vqd
from repro.core.vqe import VQE, VQEResult
from repro.core.workflow import WorkflowResult, run_vqe_workflow

__all__ = [
    "VQE",
    "run_qpe",
    "run_qpe_trotter",
    "run_iterative_qpe",
    "run_vqd",
    "VQDResult",
    "allocate_shots",
    "sampled_energy_with_allocation",
    "QPEResult",
    "cafqa_search",
    "cafqa_bootstrap_vqe",
    "CafqaResult",
    "scan_potential_energy_surface",
    "ScanResult",
    "ScanPoint",
    "VQEResult",
    "AdaptVQE",
    "AdaptResult",
    "AdaptIteration",
    "AdaptState",
    "CampaignRunner",
    "CampaignResult",
    "CampaignFailedError",
    "PostAnsatzCache",
    "CachedEnergyEvaluator",
    "GateLedger",
    "Estimator",
    "DirectEstimator",
    "CachingEstimator",
    "SamplingEstimator",
    "make_estimator",
    "uccsd_gate_count",
    "jw_pauli_term_count",
    "jw_basis_change_gates",
    "statevector_memory_bytes",
    "energy_evaluation_gate_counts",
    "EnergyEvaluationCost",
    "run_vqe_workflow",
    "WorkflowResult",
]
