"""The VQE driver (paper §3.1 workflow, steps 1-5).

Two execution modes, matching how the paper's stack is layered:

* **Chemistry mode** (``generators`` + ``reference_state``): the
  NWQ-Sim fast path.  The ansatz is a product of generator
  exponentials applied directly to the statevector
  (``repro.opt.gradient.AnsatzObjective``), expectation values are
  computed directly from amplitudes (§4.2), and analytic adjoint
  gradients feed gradient-based optimizers.
* **Circuit mode** (``ansatz`` circuit + ``estimator``): the portable
  XACC-style path — the parameterized circuit is compiled once to a
  bind-free execution plan (``repro.sim.plan``) and re-executed per
  evaluation through any estimator (direct / caching / sampling),
  which is what the caching and sampling ablations measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.obs import events as obs_events
from repro.obs.flight import FlightRecorder
from repro.ir.circuit import Circuit
from repro.ir.pauli import PauliSum
from repro.core.estimator import DirectEstimator, Estimator
from repro.opt.base import Optimizer, OptimizeResult
from repro.opt.gradient import AnsatzObjective
from repro.opt.scipy_wrap import LBFGSB
from repro.sim.plan import compile_circuit
from repro.utils.profiling import Timer

__all__ = ["VQE", "VQEResult"]


@dataclass
class VQEResult:
    """Converged VQE output.

    ``report`` is a :class:`repro.obs.RunReport` when observability was
    enabled for the run, else ``None``.
    """

    energy: float
    optimal_parameters: np.ndarray
    history: List[float]
    num_function_evaluations: int
    num_iterations: int
    converged: bool
    mode: str
    report: Optional[object] = None

    def __repr__(self) -> str:
        return (
            f"VQEResult(energy={self.energy:.8f}, nfev="
            f"{self.num_function_evaluations}, mode={self.mode!r})"
        )


class VQE:
    """Variational quantum eigensolver.

    Chemistry mode::

        vqe = VQE(hamiltonian, generators=gens, reference_state=hf)
        result = vqe.run()

    Circuit mode::

        vqe = VQE(hamiltonian, ansatz=circuit, estimator=make_estimator("caching"))
        result = vqe.run()
    """

    def __init__(
        self,
        hamiltonian: PauliSum,
        ansatz: Optional[Circuit] = None,
        estimator: Optional[Estimator] = None,
        generators: Optional[Sequence[PauliSum]] = None,
        reference_state: Optional[np.ndarray] = None,
        optimizer: Optional[Optimizer] = None,
        evaluation_callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
        timer: Optional[Timer] = None,
        flight_context: Optional[Dict[str, Any]] = None,
        fd_gradient: bool = False,
        fd_epsilon: float = 1e-6,
    ):
        if not hamiltonian.is_hermitian():
            raise ValueError("hamiltonian must be Hermitian")
        self.hamiltonian = hamiltonian
        self.optimizer = optimizer or LBFGSB()
        self.timer = timer
        # called as callback(eval_index, params, energy) after every
        # energy evaluation; the campaign layer uses it for periodic
        # parameter checkpoints and fault-injection hooks
        self.evaluation_callback = evaluation_callback
        self.num_evaluations = 0
        # convergence flight recorder: created lazily in run() when
        # observability or an event bus is active (self.flight stays
        # None otherwise, keeping the per-evaluation cost one `is None`
        # check — the disabled-overhead contract)
        self.flight: Optional[FlightRecorder] = None
        self.flight_context = dict(flight_context or {})
        # circuit-mode fused value+gradient: every energy() call also
        # computes a central-difference gradient by evaluating all
        # 2P+1 parameter rows through ONE estimate_plan_many call, and
        # gradient() returns the cached result.  scipy's quasi-Newton
        # optimizers request f and g at the same iterates, so the fuse
        # costs nothing extra sequentially — and hands batch-capable
        # estimators (the serve-layer evaluation broker) a whole sweep
        # of compatible rows at once instead of dribbling them out.
        self.fd_gradient = bool(fd_gradient)
        self.fd_epsilon = float(fd_epsilon)
        self._fd_cache_x: Optional[np.ndarray] = None
        self._fd_cache_grad: Optional[np.ndarray] = None
        self.mode: str
        if generators is not None:
            if reference_state is None:
                raise ValueError("chemistry mode needs a reference state")
            self.objective = AnsatzObjective(
                reference_state, list(generators), hamiltonian
            )
            self.mode = "chemistry"
            self.num_parameters = self.objective.num_parameters
            self.ansatz = None
            self.estimator = None
        elif ansatz is not None:
            self.ansatz = ansatz
            self.estimator = estimator or DirectEstimator(timer=timer)
            if timer is not None and getattr(self.estimator, "timer", None) is None:
                self.estimator.timer = timer
            self.objective = None
            self.mode = "circuit"
            self.num_parameters = ansatz.num_parameters
        else:
            raise ValueError("provide either generators or an ansatz circuit")

    def energy(self, params: np.ndarray) -> float:
        """One energy evaluation at the given parameters."""
        params = np.atleast_1d(np.asarray(params, dtype=float))
        with obs.span("vqe.energy_eval", mode=self.mode):
            if self.timer is not None:
                with self.timer.section("vqe_energy"):
                    e = self._energy_impl(params)
            else:
                e = self._energy_impl(params)
        self.num_evaluations += 1
        if obs.enabled():
            obs.inc(
                "repro_vqe_energy_evaluations_total",
                help="VQE objective evaluations",
                labels={"mode": self.mode},
            )
        if self.flight is not None:
            self.flight.record(e, params=params, index=self.num_evaluations)
        if self.evaluation_callback is not None:
            self.evaluation_callback(self.num_evaluations, params, e)
        return e

    def _energy_impl(self, params: np.ndarray) -> float:
        if self.mode == "chemistry":
            return self.objective.energy(params)
        if self.ansatz.num_parameters:
            # compile once, re-execute bind-free for every evaluation
            # (compile_circuit memoizes on the circuit and invalidates
            # on mutation, so ADAPT-style growing ansaetze recompile
            # exactly when they change)
            plan = compile_circuit(self.ansatz)
            if self.fd_gradient:
                return self._fd_energy_and_grad(plan, params)
            return self.estimator.estimate_plan(plan, params, self.hamiltonian)
        return self.estimator.estimate(self.ansatz, self.hamiltonian)

    def _fd_energy_and_grad(self, plan, params: np.ndarray) -> float:
        """One fused sweep: value at ``params`` plus central differences
        along every coordinate, all through ``estimate_plan_many``."""
        p = self.num_parameters
        eps = self.fd_epsilon
        rows = np.tile(params, (2 * p + 1, 1))
        for k in range(p):
            rows[1 + 2 * k, k] += eps
            rows[2 + 2 * k, k] -= eps
        vals = np.asarray(
            self.estimator.estimate_plan_many(plan, rows, self.hamiltonian),
            dtype=float,
        )
        self._fd_cache_x = params.copy()
        self._fd_cache_grad = (vals[1::2] - vals[2::2]) / (2.0 * eps)
        return float(vals[0])

    def gradient(self, params: np.ndarray) -> Optional[np.ndarray]:
        """Analytic gradient (chemistry mode) or the cached fused
        finite-difference gradient (circuit mode with ``fd_gradient``);
        ``None`` for plain circuit mode."""
        params = np.atleast_1d(np.asarray(params, dtype=float))
        if self.mode == "chemistry":
            return self.objective.gradient(params)
        if not self.fd_gradient:
            return None
        if self._fd_cache_x is not None and np.array_equal(
            params, self._fd_cache_x
        ):
            return self._fd_cache_grad.copy()
        # optimizer asked for a gradient at a point it never evaluated:
        # run the fused evaluation (fills the cache) and answer from it
        self.energy(params)
        return self._fd_cache_grad.copy()

    def run(self, initial_parameters: Optional[np.ndarray] = None) -> VQEResult:
        """Optimize to the minimum energy (§3.1 step 5)."""
        x0 = (
            np.zeros(self.num_parameters)
            if initial_parameters is None
            else np.asarray(initial_parameters, dtype=float)
        )
        if x0.shape != (self.num_parameters,):
            raise ValueError(
                f"expected {self.num_parameters} initial parameters, got {x0.shape}"
            )
        t_start = time.perf_counter()
        if obs.enabled() or obs_events.get_bus() is not None:
            self.flight = FlightRecorder(
                kind="vqe", context=self.flight_context
            )
        with obs.span(
            "vqe.run", mode=self.mode, parameters=self.num_parameters
        ):
            result = self._run_impl(x0)
        if obs.enabled():
            result.report = obs.collect_report(
                meta={
                    "kind": "vqe",
                    "mode": self.mode,
                    "num_parameters": self.num_parameters,
                    "num_qubits": self.hamiltonian.num_qubits,
                    "energy": result.energy,
                    "converged": result.converged,
                },
                convergence={"energy": list(result.history)},
                flight=(
                    self.flight.to_dict() if self.flight is not None else None
                ),
                wall_time_s=time.perf_counter() - t_start,
            )
        return result

    def _run_impl(self, x0: np.ndarray) -> VQEResult:
        if self.num_parameters == 0:
            e = self.energy(np.zeros(0))
            return VQEResult(
                energy=e,
                optimal_parameters=np.zeros(0),
                history=[e],
                num_function_evaluations=1,
                num_iterations=0,
                converged=True,
                mode=self.mode,
            )
        use_grad = self.mode == "chemistry" or (
            self.mode == "circuit" and self.fd_gradient
        )
        grad = self.gradient if use_grad else None
        res: OptimizeResult = self.optimizer.minimize(self.energy, x0, gradient=grad)
        return VQEResult(
            energy=res.fun,
            optimal_parameters=res.x,
            history=res.history,
            num_function_evaluations=res.nfev,
            num_iterations=res.nit,
            converged=res.converged,
            mode=self.mode,
        )
