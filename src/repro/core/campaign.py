"""Checkpointed, restartable VQE/ADAPT campaigns (the recovery layer).

A multi-hour ADAPT-VQE campaign on a shared HPC system must assume it
will be interrupted: rank crashes, walltime kills, node drains.  The
``CampaignRunner`` makes the drivers in this package survivable:

* **Periodic checkpointing.**  ADAPT progress (pool indices,
  parameters, per-iteration records) is serialized to JSON every
  ``checkpoint_period`` iterations — atomically, via temp-file +
  ``os.replace``, like the statevector checkpoints in
  ``repro.sim.checkpoint``.  Plain VQE checkpoints the latest
  parameter vector every ``checkpoint_period`` energy evaluations.
* **Restart-on-failure.**  An unrecoverable
  :class:`repro.hpc.faults.RankFailure` (injected by a
  ``FaultInjector`` or raised by the distributed substrate) rolls the
  campaign back to the last checkpoint and replays from there, up to
  ``max_restarts`` times; the work redone is reported so the
  checkpoint-period / lost-work tradeoff is measurable
  (``benchmarks/bench_fault_recovery.py``).
* **Distributed cross-check.**  Optionally every checkpoint is
  validated by scattering the ansatz state over a
  ``DistributedStatevector`` and recomputing the energy through the
  (fault-injected, retry-protected) ``SimComm`` — so transient
  exchange faults and their retries are exercised inside the same
  campaign whose crash recovery is being tested.

Because the fault injector, the retry jitter, and the optimizers are
all seeded/deterministic, an entire faulty campaign — crashes,
retries, rollbacks and all — replays identically, and must land on
the same final energy as the fault-free run.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.obs import events as obs_events
from repro.core.adapt import (
    AdaptIteration,
    AdaptResult,
    AdaptState,
    AdaptVQE,
    convergence_traces,
)
from repro.core.vqe import VQE, VQEResult
from repro.hpc.comm import SimComm
from repro.hpc.distributed import DistributedStatevector
from repro.hpc.faults import FaultInjector, FaultLedger, RankFailure
from repro.hpc.perfmodel import SimulatedClock
from repro.utils.retry import RetryPolicy

__all__ = [
    "CampaignFailedError",
    "CheckpointSchemaError",
    "CampaignResult",
    "CampaignRunner",
]

_ADAPT_STATE_FILE = "adapt_state.json"
_VQE_STATE_FILE = "vqe_params.json"
_STATE_VERSION = 1


class CampaignFailedError(RuntimeError):
    """The campaign could not be completed within ``max_restarts``."""


class CheckpointSchemaError(ValueError):
    """A campaign checkpoint does not match the schema this version of
    the code writes — stale (older writer), future (newer writer), or
    structurally broken.  Raised instead of a raw ``KeyError`` /
    ``TypeError`` so callers can distinguish "wrong format" from
    "corrupt file" and tell the operator what to do."""


def _check_schema_version(payload: dict, path: str) -> None:
    """Reject checkpoints written by a different schema version with an
    actionable message."""
    version = payload.get("version")
    if not isinstance(version, int):
        raise CheckpointSchemaError(
            f"campaign checkpoint {path!r} has no integer 'version' field — "
            "not a repro campaign checkpoint, or written before versioning"
        )
    if version < _STATE_VERSION:
        raise CheckpointSchemaError(
            f"stale campaign checkpoint {path!r}: version {version} < "
            f"supported {_STATE_VERSION}; re-run the campaign from scratch "
            "or migrate the checkpoint"
        )
    if version > _STATE_VERSION:
        raise CheckpointSchemaError(
            f"campaign checkpoint {path!r} is from a newer repro (version "
            f"{version} > supported {_STATE_VERSION}); upgrade this "
            "installation to resume it"
        )


def _require_fields(payload: dict, fields: Sequence[str], path: str) -> None:
    missing = [f for f in fields if f not in payload]
    if missing:
        raise CheckpointSchemaError(
            f"campaign checkpoint {path!r} is missing required field(s) "
            f"{missing} — truncated write or incompatible schema"
        )


@dataclass
class CampaignResult:
    """A converged campaign plus its recovery bookkeeping.

    ``report`` is a :class:`repro.obs.RunReport` when observability was
    enabled for the campaign, else ``None``.
    """

    result: Union[AdaptResult, VQEResult]
    restarts: int
    checkpoints_written: int
    iterations_recomputed: int
    resumed_from: Optional[int]
    fault_ledger: Optional[FaultLedger]
    simulated_backoff_s: float = 0.0
    report: Optional[object] = None

    @property
    def energy(self) -> float:
        return self.result.energy


def _atomic_write_json(payload: dict, path: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)


class CampaignRunner:
    """Drives a VQE or ADAPT-VQE run with checkpoint/restart semantics.

    Parameters
    ----------
    checkpoint_dir:
        Where campaign state lives.  Re-running a ``CampaignRunner``
        over a directory holding a previous (partial) campaign resumes
        it — that is the batch-queue walltime-kill story.
    checkpoint_period:
        Checkpoint every N ADAPT iterations (or every N VQE energy
        evaluations).  Small N = little lost work but more I/O; the
        Young/Daly analysis in ``repro.hpc.perfmodel`` quantifies the
        tradeoff.
    max_restarts:
        Rank failures tolerated before :class:`CampaignFailedError`.
    fault_injector:
        Optional deterministic fault source (campaign-scope crashes
        consult it each iteration; the distributed cross-check routes
        comm-scope faults through it too).
    retry_policy:
        Retry policy for the distributed cross-check's communicator.
    distributed_ranks:
        If set, every checkpoint is cross-validated on a
        ``DistributedStatevector`` over this many simulated ranks.
    """

    def __init__(
        self,
        checkpoint_dir: str,
        checkpoint_period: int = 1,
        max_restarts: int = 3,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        distributed_ranks: Optional[int] = None,
        crosscheck_tolerance: float = 1e-8,
    ):
        if checkpoint_period < 1:
            raise ValueError("checkpoint_period must be >= 1")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_period = checkpoint_period
        self.max_restarts = max_restarts
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        self.distributed_ranks = distributed_ranks
        self.crosscheck_tolerance = crosscheck_tolerance
        self.clock = SimulatedClock()
        self.checkpoints_written = 0
        self._crosscheck_comm: Optional[SimComm] = None
        os.makedirs(checkpoint_dir, exist_ok=True)
        if obs.enabled():
            # simulated-time span attributes follow the campaign clock
            obs.set_clock(self.clock)

    # -- ADAPT campaigns ----------------------------------------------------------

    def run_adapt(self, adapt: AdaptVQE, verbose: bool = False) -> CampaignResult:
        """Run (or resume) an ADAPT-VQE campaign to convergence."""
        t_start = time.perf_counter()
        st = self._load_adapt_state(adapt)
        resumed_from = st.iteration if st is not None else None
        if st is None:
            st = adapt.initial_state()
        restarts = 0
        recomputed = 0
        while not st.converged and st.iteration < adapt.max_iterations:
            try:
                with obs.span(
                    "campaign.iteration", iteration=st.iteration + 1
                ):
                    if self.fault_injector is not None:
                        # the crash lands *mid-iteration*: the step's work
                        # is lost and the campaign rolls back
                        self.fault_injector.check_campaign_faults(st.iteration + 1)
                    adapt.step(st, verbose=verbose)
                    if st.converged or st.iteration % self.checkpoint_period == 0:
                        self._save_adapt_state(st)
                        self._distributed_crosscheck(adapt, st)
            except RankFailure as err:
                restarts += 1
                obs_events.emit(
                    "campaign.restart",
                    kind="adapt",
                    restart=restarts,
                    reason=str(err),
                )
                if obs.enabled():
                    obs.inc(
                        "repro_campaign_restarts_total",
                        help="Campaign rollbacks after rank failures",
                    )
                if restarts > self.max_restarts:
                    raise CampaignFailedError(
                        f"gave up after {restarts} rank failures (last: {err})"
                    ) from err
                failed_at = st.iteration + 1
                st = self._load_adapt_state(adapt) or adapt.initial_state()
                recomputed += failed_at - 1 - st.iteration
                if verbose:
                    print(
                        f"[campaign] {err}; rolled back to iteration "
                        f"{st.iteration}, restart {restarts}/{self.max_restarts}"
                    )
        self._save_adapt_state(st)
        result = adapt.result(st)
        campaign_result = CampaignResult(
            result=result,
            restarts=restarts,
            checkpoints_written=self.checkpoints_written,
            iterations_recomputed=recomputed,
            resumed_from=resumed_from,
            fault_ledger=(
                self.fault_injector.ledger if self.fault_injector else None
            ),
            simulated_backoff_s=self.clock.now,
        )
        if obs.enabled():
            campaign_result.report = self._collect_report(
                kind="adapt_campaign",
                result=campaign_result,
                convergence=convergence_traces(result.iterations),
                flight=adapt.flight.to_dict(),
                wall_time_s=time.perf_counter() - t_start,
            )
        return campaign_result

    def _collect_report(
        self,
        kind: str,
        result: "CampaignResult",
        convergence: Optional[dict],
        wall_time_s: float,
        flight: Optional[dict] = None,
    ):
        """Aggregate campaign-level telemetry into one RunReport."""
        return obs.collect_report(
            meta={
                "kind": kind,
                "energy": result.energy,
                "restarts": result.restarts,
                "checkpoints_written": result.checkpoints_written,
                "iterations_recomputed": result.iterations_recomputed,
                "resumed_from": result.resumed_from,
                "simulated_backoff_s": result.simulated_backoff_s,
            },
            comm_stats=self.comm_stats,
            fault_ledger=(
                self.fault_injector.ledger if self.fault_injector else None
            ),
            convergence=convergence,
            flight=flight,
            wall_time_s=wall_time_s,
        )

    def _adapt_state_path(self) -> str:
        return os.path.join(self.checkpoint_dir, _ADAPT_STATE_FILE)

    def _save_adapt_state(self, st: AdaptState) -> None:
        payload = {
            "version": _STATE_VERSION,
            "iteration": st.iteration,
            "chosen_indices": list(st.chosen_indices),
            "parameters": [float(x) for x in st.parameters],
            "energy": st.energy,
            "converged": st.converged,
            "records": [
                {
                    "iteration": r.iteration,
                    "selected_label": r.selected_label,
                    "max_gradient": r.max_gradient,
                    "energy": r.energy,
                    "error_vs_reference": r.error_vs_reference,
                    "num_parameters": r.num_parameters,
                }
                for r in st.records
            ],
        }
        with obs.span("campaign.checkpoint", iteration=st.iteration):
            if obs.enabled():
                # snapshot telemetry alongside the state (ignored by the
                # loader; purely for post-mortem inspection)
                payload["report"] = obs.collect_report(
                    meta={"kind": "adapt_checkpoint", "iteration": st.iteration},
                    fault_ledger=(
                        self.fault_injector.ledger if self.fault_injector else None
                    ),
                    convergence=convergence_traces(st.records),
                ).to_dict()
            _atomic_write_json(payload, self._adapt_state_path())
        self.checkpoints_written += 1
        obs_events.emit(
            "campaign.checkpoint", kind="adapt", iteration=st.iteration
        )
        if obs.enabled():
            obs.inc(
                "repro_campaign_checkpoints_total",
                help="Campaign checkpoints written",
            )

    def _load_adapt_state(self, adapt: AdaptVQE) -> Optional[AdaptState]:
        path = self._adapt_state_path()
        if not os.path.isfile(path):
            return None
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (json.JSONDecodeError, OSError) as err:
            raise ValueError(f"corrupt campaign checkpoint {path!r}: {err}") from err
        if not isinstance(payload, dict):
            raise CheckpointSchemaError(
                f"campaign checkpoint {path!r} is not a JSON object"
            )
        _check_schema_version(payload, path)
        _require_fields(
            payload,
            ("iteration", "chosen_indices", "parameters", "energy",
             "records", "converged"),
            path,
        )
        chosen = [int(k) for k in payload["chosen_indices"]]
        if any(k < 0 or k >= len(adapt.pool) for k in chosen):
            raise ValueError(
                "campaign checkpoint references operators outside the pool "
                "(wrong pool for this checkpoint?)"
            )
        params = np.asarray(payload["parameters"], dtype=float)
        if params.shape != (len(chosen),):
            raise ValueError("campaign checkpoint parameter/operator count mismatch")
        try:
            records = [AdaptIteration(**r) for r in payload["records"]]
        except TypeError as err:
            raise CheckpointSchemaError(
                f"campaign checkpoint {path!r} has an incompatible iteration-"
                f"record layout: {err}"
            ) from err
        st = AdaptState(
            iteration=int(payload["iteration"]),
            chosen_indices=chosen,
            parameters=params,
            energy=float(payload["energy"]),
            records=records,
            converged=bool(payload["converged"]),
        )
        st.statevector = adapt.prepare_statevector(st)
        return st

    # public aliases used by the campaign server (repro.serve) to drive
    # stepwise executions through the same checkpoint machinery
    def load_adapt_state(self, adapt: AdaptVQE) -> Optional[AdaptState]:
        return self._load_adapt_state(adapt)

    def save_adapt_state(self, st: AdaptState) -> None:
        self._save_adapt_state(st)

    # -- distributed cross-check --------------------------------------------------

    def _distributed_crosscheck(self, adapt: AdaptVQE, st: AdaptState) -> None:
        """Recompute the checkpointed energy on the distributed backend
        (through the fault-injected, retry-protected communicator) and
        insist it agrees with the dense driver."""
        if self.distributed_ranks is None:
            return
        n = adapt.hamiltonian.num_qubits
        if self._crosscheck_comm is None:
            self._crosscheck_comm = SimComm(
                self.distributed_ranks,
                fault_injector=self.fault_injector,
                retry_policy=self.retry_policy,
                clock=self.clock,
            )
        with obs.span(
            "campaign.crosscheck",
            iteration=st.iteration,
            ranks=self.distributed_ranks,
        ):
            dsv = DistributedStatevector(
                n, self.distributed_ranks, comm=self._crosscheck_comm
            )
            vec = (
                st.statevector
                if st.statevector is not None
                else adapt.prepare_statevector(st)
            )
            for k in range(dsv.num_ranks):
                dsv.slices[k] = np.array(
                    vec[k * dsv.local_dim : (k + 1) * dsv.local_dim],
                    dtype=np.complex128,
                )
            e_dist = dsv.expectation(adapt.hamiltonian)
        if abs(e_dist - st.energy) > self.crosscheck_tolerance:
            raise CampaignFailedError(
                f"distributed cross-check diverged: dense {st.energy:.12f} "
                f"vs distributed {e_dist:.12f}"
            )

    @property
    def comm_stats(self):
        """CommStats of the cross-check communicator (retries, bytes),
        or None if no distributed cross-check ran."""
        return self._crosscheck_comm.stats if self._crosscheck_comm else None

    # -- plain VQE campaigns ------------------------------------------------------

    def run_vqe(
        self, vqe: VQE, initial_parameters: Optional[np.ndarray] = None
    ) -> CampaignResult:
        """Run (or resume) a VQE optimization with parameter
        checkpointing every ``checkpoint_period`` energy evaluations.

        After a rank failure the optimizer restarts warm from the last
        checkpointed parameter vector — for deterministic optimizers
        this converges to the same minimum as the uninterrupted run.
        """
        t_start = time.perf_counter()
        saved = self._load_vqe_params()
        resumed_from = saved["eval"] if saved is not None else None
        x0 = (
            np.asarray(saved["parameters"], dtype=float)
            if saved is not None
            else initial_parameters
        )
        restarts = 0
        previous_callback = vqe.evaluation_callback

        def checkpoint_callback(idx: int, params: np.ndarray, energy: float) -> None:
            if self.fault_injector is not None:
                self.fault_injector.check_campaign_faults(idx)
            if idx % self.checkpoint_period == 0:
                self._save_vqe_params(params, energy, idx)
            if previous_callback is not None:
                previous_callback(idx, params, energy)

        vqe.evaluation_callback = checkpoint_callback
        try:
            while True:
                try:
                    result = vqe.run(x0)
                    break
                except RankFailure as err:
                    restarts += 1
                    obs_events.emit(
                        "campaign.restart",
                        kind="vqe",
                        restart=restarts,
                        reason=str(err),
                    )
                    if obs.enabled():
                        obs.inc(
                            "repro_campaign_restarts_total",
                            help="Campaign rollbacks after rank failures",
                        )
                    if restarts > self.max_restarts:
                        raise CampaignFailedError(
                            f"gave up after {restarts} rank failures (last: {err})"
                        ) from err
                    saved = self._load_vqe_params()
                    x0 = (
                        np.asarray(saved["parameters"], dtype=float)
                        if saved is not None
                        else initial_parameters
                    )
        finally:
            vqe.evaluation_callback = previous_callback
        self._save_vqe_params(result.optimal_parameters, result.energy, vqe.num_evaluations)
        campaign_result = CampaignResult(
            result=result,
            restarts=restarts,
            checkpoints_written=self.checkpoints_written,
            iterations_recomputed=0,
            resumed_from=resumed_from,
            fault_ledger=(
                self.fault_injector.ledger if self.fault_injector else None
            ),
            simulated_backoff_s=self.clock.now,
        )
        if obs.enabled():
            campaign_result.report = self._collect_report(
                kind="vqe_campaign",
                result=campaign_result,
                convergence={"energy": list(result.history)},
                flight=(
                    vqe.flight.to_dict() if vqe.flight is not None else None
                ),
                wall_time_s=time.perf_counter() - t_start,
            )
        return campaign_result

    def _vqe_state_path(self) -> str:
        return os.path.join(self.checkpoint_dir, _VQE_STATE_FILE)

    def _save_vqe_params(
        self, params: np.ndarray, energy: float, eval_index: int
    ) -> None:
        with obs.span("campaign.checkpoint", eval=eval_index):
            _atomic_write_json(
                {
                    "version": _STATE_VERSION,
                    "parameters": [float(x) for x in np.atleast_1d(params)],
                    "energy": float(energy),
                    "eval": int(eval_index),
                },
                self._vqe_state_path(),
            )
        self.checkpoints_written += 1
        obs_events.emit(
            "campaign.checkpoint", kind="vqe", eval=eval_index
        )
        if obs.enabled():
            obs.inc(
                "repro_campaign_checkpoints_total",
                help="Campaign checkpoints written",
            )

    def _load_vqe_params(self) -> Optional[dict]:
        path = self._vqe_state_path()
        if not os.path.isfile(path):
            return None
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (json.JSONDecodeError, OSError) as err:
            raise ValueError(f"corrupt campaign checkpoint {path!r}: {err}") from err
        if not isinstance(payload, dict):
            raise CheckpointSchemaError(
                f"campaign checkpoint {path!r} is not a JSON object"
            )
        _check_schema_version(payload, path)
        _require_fields(payload, ("parameters", "energy", "eval"), path)
        return payload
