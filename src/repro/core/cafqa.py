"""CAFQA-style Clifford bootstrap for VQE (paper §6.1, ref [11]).

CAFQA observes that when every variational rotation sits at a multiple
of pi/2 the ansatz circuit is Clifford, so its energy is classically
computable in polynomial time with a stabilizer simulator.  Searching
this discrete lattice yields an initialization at least as good as —
often far better than — the zero-angle (Hartree–Fock) start, at
negligible cost compared to the continuous optimization it seeds.

``cafqa_search`` runs multi-restart coordinate descent over the
{0, pi/2, pi, 3pi/2}^m lattice, evaluating each candidate with
``repro.sim.stabilizer.StabilizerSimulator``; ``cafqa_bootstrap_vqe``
wires the winner into a warm-started continuous VQE run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.circuit import Circuit
from repro.ir.pauli import PauliSum
from repro.sim.stabilizer import StabilizerSimulator

__all__ = ["CafqaResult", "cafqa_search", "cafqa_bootstrap_vqe"]

_CLIFFORD_ANGLES = (0.0, math.pi / 2, math.pi, 3 * math.pi / 2)


@dataclass
class CafqaResult:
    """Best Clifford point found by the discrete search."""

    energy: float
    angles: np.ndarray
    evaluations: int
    restarts: int
    improved_over_zero: bool


def _clifford_energy(
    circuit: Circuit, hamiltonian: PauliSum, angles: Sequence[float]
) -> float:
    bound = circuit.bind(list(angles))
    sim = StabilizerSimulator(circuit.num_qubits)
    sim.run(bound)
    return sim.expectation(hamiltonian)


def cafqa_search(
    ansatz: Circuit,
    hamiltonian: PauliSum,
    restarts: int = 4,
    max_sweeps: int = 10,
    seed: int = 0,
) -> CafqaResult:
    """Coordinate-descent search over the Clifford lattice.

    Each sweep tries all four Clifford angles for every parameter in
    turn, keeping improvements; sweeps repeat to a fixed point.
    Restart 0 starts from all-zero angles (the HF point for chemistry
    ansatze); the rest start from random lattice points.
    """
    m = ansatz.num_parameters
    if m == 0:
        raise ValueError("ansatz has no parameters")
    rng = np.random.default_rng(seed)
    evaluations = 0

    e_zero = _clifford_energy(ansatz, hamiltonian, [0.0] * m)
    evaluations += 1
    best_angles = np.zeros(m)
    best_energy = e_zero

    for restart in range(restarts):
        if restart == 0:
            angles = np.zeros(m)
            energy = e_zero
        else:
            angles = rng.choice(_CLIFFORD_ANGLES, size=m)
            energy = _clifford_energy(ansatz, hamiltonian, angles)
            evaluations += 1
        for _ in range(max_sweeps):
            improved = False
            for k in range(m):
                current = angles[k]
                for cand in _CLIFFORD_ANGLES:
                    if cand == current:
                        continue
                    trial = angles.copy()
                    trial[k] = cand
                    e = _clifford_energy(ansatz, hamiltonian, trial)
                    evaluations += 1
                    if e < energy - 1e-12:
                        angles, energy = trial, e
                        improved = True
            if not improved:
                break
        if energy < best_energy - 1e-12:
            best_energy, best_angles = energy, angles.copy()

    return CafqaResult(
        energy=float(best_energy),
        angles=best_angles,
        evaluations=evaluations,
        restarts=restarts,
        improved_over_zero=best_energy < e_zero - 1e-12,
    )


def cafqa_bootstrap_vqe(
    ansatz: Circuit,
    hamiltonian: PauliSum,
    optimizer=None,
    restarts: int = 4,
    seed: int = 0,
):
    """Full CAFQA pipeline: discrete Clifford search, then continuous
    VQE warm-started at the winner.  Returns ``(CafqaResult, VQEResult)``."""
    from repro.core.vqe import VQE

    search = cafqa_search(ansatz, hamiltonian, restarts=restarts, seed=seed)
    vqe = VQE(hamiltonian, ansatz=ansatz, optimizer=optimizer)
    result = vqe.run(search.angles)
    return search, result
