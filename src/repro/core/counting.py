"""Analytic resource counting for the paper's scaling figures.

Everything in Fig. 1 and Fig. 3 is a *count*, independent of hardware:

* Fig. 1a — UCCSD ansatz gates vs qubits (``uccsd_gate_count``),
* Fig. 1b — Pauli terms of a (downfolded) two-body observable vs
  qubits (``jw_pauli_term_count``),
* Fig. 1c — statevector memory vs qubits (``statevector_memory_bytes``),
* Fig. 3  — gates per VQE energy evaluation with and without
  post-ansatz state caching (``energy_evaluation_gate_counts``).

``jw_pauli_term_count`` is an exact closed form for the JW image of a
dense two-body spin-orbital Hamiltonian, derived from the string
families the mapping produces (diagonal Z/ZZ, hopping strings with
optional number-operator Z insertions, and double-excitation strings —
6 surviving patterns per same-spin quadruple, 4 per mixed-spin).  The
formula is validated term-for-term against explicit construction at 12
and 16 qubits in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Dict, Optional

from repro.chem.uccsd import count_uccsd_gates

__all__ = [
    "uccsd_gate_count",
    "jw_pauli_term_count",
    "jw_basis_change_gates",
    "statevector_memory_bytes",
    "energy_evaluation_gate_counts",
    "EnergyEvaluationCost",
]


def uccsd_gate_count(num_qubits: int, num_electrons: Optional[int] = None) -> int:
    """Total gates of the compiled one-Trotter-step UCCSD ansatz
    (Fig. 1a).  Half filling by default, matching the paper's sweep."""
    return count_uccsd_gates(num_qubits, num_electrons)["total_gates"]


def jw_pauli_term_count(num_qubits: int) -> int:
    """Exact Pauli-term count of the JW-mapped dense two-body
    Hamiltonian on ``num_qubits`` qubits (= spin orbitals), including
    the identity term (Fig. 1b).

    Families (n_sp = num_qubits / 2 spatial orbitals, N = num_qubits):

    ========================  ==========================  ============
    family                    multiplicity                strings each
    ========================  ==========================  ============
    identity                  1                           1
    Z_p                       N                           1
    Z_p Z_q                   C(N, 2)                     1
    hop (same-spin pair)      2 C(n_sp, 2)                2 (N - 1)
    same-spin quadruple       2 C(n_sp, 4)                6
    mixed-spin quadruple      C(n_sp, 2)^2                4
    ========================  ==========================  ============
    """
    if num_qubits % 2 != 0:
        raise ValueError("spin-orbital count must be even")
    n_sp = num_qubits // 2
    n = num_qubits
    return (
        1
        + n
        + comb(n, 2)
        + 4 * (n - 1) * comb(n_sp, 2)
        + 12 * comb(n_sp, 4)
        + 4 * comb(n_sp, 2) ** 2
    )


def jw_basis_change_gates(num_qubits: int) -> int:
    """Total basis-rotation gates needed to measure every term of the
    dense two-body JW Hamiltonian once (X factor -> 1 gate, Y -> 2).

    Hop strings split evenly into XZ..X (2 gates) and YZ..Y (4 gates);
    quadruple strings average one Y per two letters (6 gates for the
    4-letter strings).  Diagonal strings cost nothing.
    """
    n_sp = num_qubits // 2
    n = num_qubits
    hop_strings = 4 * (n - 1) * comb(n_sp, 2)
    quad_strings = 12 * comb(n_sp, 4) + 4 * comb(n_sp, 2) ** 2
    return hop_strings * 3 + quad_strings * 6


def statevector_memory_bytes(num_qubits: int, bytes_per_amplitude: int = 16) -> int:
    """Memory of a dense complex128 statevector (Fig. 1c)."""
    return (1 << num_qubits) * bytes_per_amplitude


@dataclass
class EnergyEvaluationCost:
    """Gate budget of one VQE energy evaluation (the Fig. 3 quantities)."""

    num_qubits: int
    ansatz_gates: int
    num_pauli_terms: int
    basis_change_gates: int
    non_caching_gates: int
    caching_gates: int

    @property
    def savings_orders_of_magnitude(self) -> float:
        """log10(non_caching / caching) — the paper reports 3 to 5."""
        import math

        return math.log10(self.non_caching_gates / self.caching_gates)


def energy_evaluation_gate_counts(
    num_qubits: int, num_electrons: Optional[int] = None
) -> EnergyEvaluationCost:
    """Fig. 3: gates for one full energy evaluation.

    Non-caching execution re-prepares the ansatz for *every* Pauli
    term before its basis change (paper §5.1); caching prepares it
    once and pays only the basis changes.
    """
    ansatz = uccsd_gate_count(num_qubits, num_electrons)
    terms = jw_pauli_term_count(num_qubits)
    basis = jw_basis_change_gates(num_qubits)
    non_caching = terms * ansatz + basis
    caching = ansatz + basis
    return EnergyEvaluationCost(
        num_qubits=num_qubits,
        ansatz_gates=ansatz,
        num_pauli_terms=terms,
        basis_change_gates=basis,
        non_caching_gates=non_caching,
        caching_gates=caching,
    )
