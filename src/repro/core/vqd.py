"""Variational quantum deflation (VQD): excited states with VQE.

Chemistry validation needs more than ground states — potential energy
surfaces of excited states decide photochemistry.  VQD (Higgott,
Wang & Brierley, 2019) finds state k by minimizing

    E_k(theta) = <psi(theta)|H|psi(theta)>
                 + sum_{j<k} beta_j |<psi(theta)|psi_j>|^2

where the overlap penalties deflate the already-found states out of
the search space.  With statevector access the overlaps are exact
inner products, so the method composes directly with the chemistry-
mode ansatz objective and its adjoint gradients.

The deflation weights must exceed the energy gaps; we default to
``beta = 2 * (spectral 1-norm bound)`` which always suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.ir.compiled import compile_observable
from repro.ir.pauli import PauliSum
from repro.opt.base import Optimizer
from repro.opt.gradient import AnsatzObjective
from repro.opt.scipy_wrap import LBFGSB

__all__ = ["VQDResult", "run_vqd"]


@dataclass
class VQDResult:
    """The computed portion of the spectrum."""

    energies: List[float]
    states: List[np.ndarray]
    parameters: List[np.ndarray]
    function_evaluations: int

    @property
    def gaps(self) -> List[float]:
        """Excitation energies relative to the ground state."""
        return [e - self.energies[0] for e in self.energies[1:]]


def run_vqd(
    hamiltonian: PauliSum,
    generators: Sequence[PauliSum],
    reference_state: np.ndarray,
    num_states: int = 2,
    beta: Optional[float] = None,
    optimizer: Optional[Optimizer] = None,
    initial_parameters: Optional[Sequence[np.ndarray]] = None,
    restarts: int = 2,
    seed: int = 0,
) -> VQDResult:
    """Compute the lowest ``num_states`` eigenstates reachable by the
    ansatz (within its symmetry sector).

    Parameters
    ----------
    generators / reference_state:
        Same product-of-exponentials ansatz family as chemistry-mode
        VQE; the reference fixes the particle-number sector.
    beta:
        Deflation weight; defaults to twice the Pauli 1-norm of H
        (a rigorous upper bound on any gap).
    restarts:
        Random restarts per excited state (the deflated landscape has
        more local minima than the ground-state one).
    """
    if num_states < 1:
        raise ValueError("need at least one state")
    if beta is None:
        beta = 2.0 * hamiltonian.norm1()
    optimizer = optimizer or LBFGSB(max_iterations=500)
    rng = np.random.default_rng(seed)

    objective = AnsatzObjective(reference_state, list(generators), hamiltonian)
    compiled_h = compile_observable(hamiltonian)
    m = objective.num_parameters
    found_states: List[np.ndarray] = []
    energies: List[float] = []
    parameters: List[np.ndarray] = []
    nfev = 0

    for k in range(num_states):

        def deflated_energy(x: np.ndarray) -> float:
            state = objective.prepare_state(x)
            e = float(np.real(np.vdot(state, compiled_h.apply(state))))
            for prev in found_states:
                e += beta * float(np.abs(np.vdot(prev, state)) ** 2)
            return e

        def deflated_gradient(x: np.ndarray) -> np.ndarray:
            # adjoint gradient of the deflated functional: lambda gains
            # beta * <prev|psi> |prev> terms alongside H|psi>.
            psi = objective.prepare_state(x)
            lam = compiled_h.apply(psi)
            for prev in found_states:
                lam = lam + beta * np.vdot(prev, psi) * prev
            phi = psi
            grad = np.zeros(m)
            for j in range(m - 1, -1, -1):
                ev = objective.evolutions[j]
                grad[j] = 2.0 * np.real(np.vdot(lam, ev.apply_generator(phi)))
                phi = ev.apply(phi, -x[j])
                lam = ev.apply(lam, -x[j])
            return grad

        starts = []
        if initial_parameters is not None and k < len(initial_parameters):
            starts.append(np.asarray(initial_parameters[k], dtype=float))
        if k == 0:
            starts.append(np.zeros(m))
        for _ in range(restarts):
            starts.append(rng.normal(scale=0.2, size=m))

        best = None
        for x0 in starts:
            res = optimizer.minimize(deflated_energy, x0, gradient=deflated_gradient)
            nfev += res.nfev
            if best is None or res.fun < best.fun:
                best = res
        assert best is not None
        state = objective.prepare_state(best.x)
        # report the raw energy, not the deflated functional
        energy = float(np.real(np.vdot(state, compiled_h.apply(state))))
        found_states.append(state)
        energies.append(energy)
        parameters.append(best.x)

    return VQDResult(
        energies=energies,
        states=found_states,
        parameters=parameters,
        function_evaluations=nfev,
    )
