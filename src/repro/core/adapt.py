"""ADAPT-VQE (paper §5.3; Grimsley et al. [4], qubit-ADAPT [16]).

The ansatz is grown one operator per iteration: every pool candidate's
energy gradient at theta = 0,

    dE/dtheta_k |_0 = <psi| [H, A_k] |psi> = 2 Re <H psi | A_k psi>,

is evaluated on the *current* state (two operator applications per
candidate — no circuits), the largest-|gradient| operator is appended,
and all parameters are re-optimized warm-started from the previous
optimum.  This is exactly the loop whose convergence Fig. 5 plots for
the downfolded 6-orbital H2O system: energy error vs iteration, one
added layer per iteration, chemical accuracy (1 mHa) around
iteration 16.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.obs.flight import FlightRecorder
from repro.chem.pools import PoolOperator
from repro.ir.compiled import compile_observable
from repro.ir.pauli import PauliSum
from repro.opt.base import Optimizer
from repro.opt.gradient import AnsatzObjective
from repro.opt.scipy_wrap import LBFGSB
from repro.utils.profiling import Timer

__all__ = [
    "AdaptVQE",
    "AdaptResult",
    "AdaptIteration",
    "AdaptState",
    "convergence_traces",
]

CHEMICAL_ACCURACY_HA = 1.594e-3  # 1 kcal/mol in Hartree
MILLI_HARTREE = 1e-3


def convergence_traces(iterations: Sequence["AdaptIteration"]) -> dict:
    """Per-iteration convergence series for run reports / plotting."""
    traces = {
        "energy": [it.energy for it in iterations],
        "max_gradient": [it.max_gradient for it in iterations],
    }
    errors = [
        it.error_vs_reference
        for it in iterations
        if it.error_vs_reference is not None
    ]
    if errors:
        traces["error_vs_reference"] = errors
    return traces


@dataclass
class AdaptIteration:
    """Record of one ADAPT growth step."""

    iteration: int
    selected_label: str
    max_gradient: float
    energy: float
    error_vs_reference: Optional[float]
    num_parameters: int


@dataclass
class AdaptState:
    """Resumable ADAPT progress: everything ``step`` needs to continue.

    This is the unit the campaign layer (``repro.core.campaign``)
    checkpoints between growth iterations — pool indices rather than
    operators, so it round-trips through JSON.  ``statevector`` is a
    derived cache (recomputed from ``parameters`` after a restore).
    """

    iteration: int = 0
    chosen_indices: List[int] = field(default_factory=list)
    parameters: np.ndarray = field(default_factory=lambda: np.zeros(0))
    energy: float = 0.0
    records: List[AdaptIteration] = field(default_factory=list)
    converged: bool = False
    statevector: Optional[np.ndarray] = None


@dataclass
class AdaptResult:
    """Full ADAPT-VQE trajectory (the Fig. 5 data).

    ``report`` is a :class:`repro.obs.RunReport` when observability was
    enabled for the run, else ``None``.
    """

    energy: float
    parameters: np.ndarray
    operator_labels: List[str]
    iterations: List[AdaptIteration]
    converged: bool
    reference_energy: Optional[float]
    report: Optional[object] = None

    @property
    def energy_errors(self) -> List[float]:
        """|E_k - E_ref| per iteration (the Fig. 5 y-axis)."""
        return [
            it.error_vs_reference
            for it in self.iterations
            if it.error_vs_reference is not None
        ]

    def iterations_to_accuracy(self, accuracy_ha: float = MILLI_HARTREE) -> Optional[int]:
        """First iteration whose error is below ``accuracy_ha`` (None if never)."""
        for it in self.iterations:
            if it.error_vs_reference is not None and it.error_vs_reference < accuracy_ha:
                return it.iteration
        return None


class AdaptVQE:
    """Adaptive ansatz growth + inner VQE re-optimization.

    Parameters
    ----------
    hamiltonian:
        Qubit observable (e.g. a downfolded effective Hamiltonian).
    pool:
        Candidate generators (``repro.chem.pools``).
    reference_state:
        Starting state (Hartree–Fock determinant).
    optimizer:
        Inner optimizer; defaults to L-BFGS-B on adjoint gradients.
    gradient_tolerance:
        Stop when the largest pool gradient falls below this.
    energy_tolerance:
        Stop when |E - reference_energy| falls below this (requires
        ``reference_energy``); the paper's criterion is 1 mHa.
    """

    def __init__(
        self,
        hamiltonian: PauliSum,
        pool: Sequence[PoolOperator],
        reference_state: np.ndarray,
        optimizer: Optional[Optimizer] = None,
        max_iterations: int = 30,
        gradient_tolerance: float = 1e-4,
        energy_tolerance: Optional[float] = None,
        reference_energy: Optional[float] = None,
        timer: Optional[Timer] = None,
        flight_context: Optional[Dict[str, Any]] = None,
    ):
        if not pool:
            raise ValueError("pool is empty")
        self.hamiltonian = hamiltonian
        # One x-mask-batched compilation shared by screening, the inner
        # objectives (via the PauliSum-attached cache) and initial_state.
        self._compiled_h = compile_observable(hamiltonian)
        self.pool = list(pool)
        self.reference_state = np.asarray(reference_state, dtype=np.complex128)
        self.optimizer = optimizer or LBFGSB(max_iterations=500)
        self.max_iterations = max_iterations
        self.gradient_tolerance = gradient_tolerance
        self.energy_tolerance = energy_tolerance
        self.reference_energy = reference_energy
        self.timer = timer
        # one growth iteration per sample is cheap enough to always
        # record; verdict events still no-op without a bus installed
        self.flight = FlightRecorder(
            kind="adapt", context=dict(flight_context or {})
        )

    def pool_gradients(self, state: np.ndarray) -> np.ndarray:
        """<[H, A_k]> for every candidate, on the given state."""
        with obs.span("adapt.pool_screening", pool_size=len(self.pool)):
            h_state = self._compiled_h.apply(state)
            grads = np.empty(len(self.pool))
            for k, op in enumerate(self.pool):
                # Compiled generator application: a UCCSD excitation
                # block's strings share one x-mask, so each candidate
                # screens in a single gather instead of one per string.
                a_state = compile_observable(op.generator).apply(state)
                grads[k] = 2.0 * np.real(np.vdot(h_state, a_state))
        return grads

    # -- stepwise interface (checkpointable campaign loop) ----------------------

    def initial_state(self) -> AdaptState:
        """Fresh ADAPT progress at iteration 0 (reference state)."""
        state = self.reference_state.copy()
        energy = float(np.real(self._compiled_h.expectation(state)))
        return AdaptState(energy=energy, statevector=state)

    def prepare_statevector(self, st: AdaptState) -> np.ndarray:
        """(Re)compute |psi(theta)> for the state's chosen operators —
        used after restoring a checkpoint, where only parameters and
        pool indices survive serialization."""
        if not st.chosen_indices:
            return self.reference_state.copy()
        objective = AnsatzObjective(
            self.reference_state,
            [self.pool[k].generator for k in st.chosen_indices],
            self.hamiltonian,
        )
        return objective.prepare_state(st.parameters)

    def step(self, st: AdaptState, verbose: bool = False) -> AdaptState:
        """One ADAPT growth iteration, in place: screen the pool on the
        current state, append the largest-gradient operator, re-optimize
        all parameters (warm-started).  Sets ``st.converged`` instead of
        growing when the pool gradient (or the energy error) is below
        tolerance."""
        if st.converged:
            return st
        with obs.span("adapt.step", iteration=st.iteration + 1):
            return self._step_impl(st, verbose)

    def _step_impl(self, st: AdaptState, verbose: bool) -> AdaptState:
        if st.statevector is None:
            st.statevector = self.prepare_statevector(st)
        grads = self.pool_gradients(st.statevector)
        k_best = int(np.argmax(np.abs(grads)))
        g_max = float(np.abs(grads[k_best]))
        if g_max < self.gradient_tolerance:
            st.converged = True
            return st
        pool_mean_abs_grad = float(np.mean(np.abs(grads)))

        st.iteration += 1
        st.chosen_indices.append(k_best)
        params = np.concatenate([st.parameters, [0.0]])  # warm start

        objective = AnsatzObjective(
            self.reference_state,
            [self.pool[k].generator for k in st.chosen_indices],
            self.hamiltonian,
        )
        with obs.span(
            "adapt.reoptimize",
            iteration=st.iteration,
            parameters=len(params),
        ):
            if self.timer is not None:
                with self.timer.section("adapt_reoptimize"):
                    res = self.optimizer.minimize(
                        objective.energy, params, gradient=objective.gradient
                    )
            else:
                res = self.optimizer.minimize(
                    objective.energy, params, gradient=objective.gradient
                )
        st.parameters = res.x
        st.energy = res.fun
        st.statevector = objective.prepare_state(st.parameters)

        err = (
            abs(st.energy - self.reference_energy)
            if self.reference_energy is not None
            else None
        )
        st.records.append(
            AdaptIteration(
                iteration=st.iteration,
                selected_label=self.pool[k_best].label,
                max_gradient=g_max,
                energy=st.energy,
                error_vs_reference=err,
                num_parameters=len(st.parameters),
            )
        )
        self.flight.record(
            st.energy,
            params=st.parameters,
            grad_norm=g_max,
            pool_size=len(self.pool),
            pool_mean_abs_grad=pool_mean_abs_grad,
            index=st.iteration,
        )
        if obs.enabled():
            obs.inc(
                "repro_adapt_iterations_total", help="ADAPT growth iterations"
            )
            obs.gauge_set(
                "repro_adapt_energy", st.energy, help="Current ADAPT energy (Ha)"
            )
            obs.gauge_set(
                "repro_adapt_max_gradient",
                g_max,
                help="Largest pool gradient at the last screening",
            )
        if verbose:
            err_s = f" dE={err*1000:.4f} mHa" if err is not None else ""
            print(
                f"[adapt {st.iteration:3d}] +{self.pool[k_best].label:24s} "
                f"|g|={g_max:.2e} E={st.energy:.8f}{err_s}"
            )
        if (
            self.energy_tolerance is not None
            and err is not None
            and err < self.energy_tolerance
        ):
            st.converged = True
        return st

    def result(self, st: AdaptState) -> AdaptResult:
        """Package a (finished or in-flight) state as an AdaptResult."""
        return AdaptResult(
            energy=st.energy,
            parameters=st.parameters,
            operator_labels=[self.pool[k].label for k in st.chosen_indices],
            iterations=list(st.records),
            converged=st.converged,
            reference_energy=self.reference_energy,
        )

    def run(self, verbose: bool = False) -> AdaptResult:
        t_start = time.perf_counter()
        st = self.initial_state()
        with obs.span(
            "adapt.run",
            pool_size=len(self.pool),
            max_iterations=self.max_iterations,
        ):
            while not st.converged and st.iteration < self.max_iterations:
                self.step(st, verbose=verbose)
        result = self.result(st)
        if obs.enabled():
            result.report = obs.collect_report(
                meta={
                    "kind": "adapt",
                    "num_qubits": self.hamiltonian.num_qubits,
                    "pool_size": len(self.pool),
                    "iterations": st.iteration,
                    "energy": result.energy,
                    "converged": result.converged,
                },
                convergence=convergence_traces(result.iterations),
                flight=self.flight.to_dict(),
                wall_time_s=time.perf_counter() - t_start,
            )
        return result
