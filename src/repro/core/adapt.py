"""ADAPT-VQE (paper §5.3; Grimsley et al. [4], qubit-ADAPT [16]).

The ansatz is grown one operator per iteration: every pool candidate's
energy gradient at theta = 0,

    dE/dtheta_k |_0 = <psi| [H, A_k] |psi> = 2 Re <H psi | A_k psi>,

is evaluated on the *current* state (two operator applications per
candidate — no circuits), the largest-|gradient| operator is appended,
and all parameters are re-optimized warm-started from the previous
optimum.  This is exactly the loop whose convergence Fig. 5 plots for
the downfolded 6-orbital H2O system: energy error vs iteration, one
added layer per iteration, chemical accuracy (1 mHa) around
iteration 16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.chem.pools import PoolOperator
from repro.ir.pauli import PauliSum
from repro.opt.base import Optimizer
from repro.opt.gradient import AnsatzObjective
from repro.opt.scipy_wrap import LBFGSB

__all__ = ["AdaptVQE", "AdaptResult", "AdaptIteration"]

CHEMICAL_ACCURACY_HA = 1.594e-3  # 1 kcal/mol in Hartree
MILLI_HARTREE = 1e-3


@dataclass
class AdaptIteration:
    """Record of one ADAPT growth step."""

    iteration: int
    selected_label: str
    max_gradient: float
    energy: float
    error_vs_reference: Optional[float]
    num_parameters: int


@dataclass
class AdaptResult:
    """Full ADAPT-VQE trajectory (the Fig. 5 data)."""

    energy: float
    parameters: np.ndarray
    operator_labels: List[str]
    iterations: List[AdaptIteration]
    converged: bool
    reference_energy: Optional[float]

    @property
    def energy_errors(self) -> List[float]:
        """|E_k - E_ref| per iteration (the Fig. 5 y-axis)."""
        return [
            it.error_vs_reference
            for it in self.iterations
            if it.error_vs_reference is not None
        ]

    def iterations_to_accuracy(self, accuracy_ha: float = MILLI_HARTREE) -> Optional[int]:
        """First iteration whose error is below ``accuracy_ha`` (None if never)."""
        for it in self.iterations:
            if it.error_vs_reference is not None and it.error_vs_reference < accuracy_ha:
                return it.iteration
        return None


class AdaptVQE:
    """Adaptive ansatz growth + inner VQE re-optimization.

    Parameters
    ----------
    hamiltonian:
        Qubit observable (e.g. a downfolded effective Hamiltonian).
    pool:
        Candidate generators (``repro.chem.pools``).
    reference_state:
        Starting state (Hartree–Fock determinant).
    optimizer:
        Inner optimizer; defaults to L-BFGS-B on adjoint gradients.
    gradient_tolerance:
        Stop when the largest pool gradient falls below this.
    energy_tolerance:
        Stop when |E - reference_energy| falls below this (requires
        ``reference_energy``); the paper's criterion is 1 mHa.
    """

    def __init__(
        self,
        hamiltonian: PauliSum,
        pool: Sequence[PoolOperator],
        reference_state: np.ndarray,
        optimizer: Optional[Optimizer] = None,
        max_iterations: int = 30,
        gradient_tolerance: float = 1e-4,
        energy_tolerance: Optional[float] = None,
        reference_energy: Optional[float] = None,
    ):
        if not pool:
            raise ValueError("pool is empty")
        self.hamiltonian = hamiltonian
        self.pool = list(pool)
        self.reference_state = np.asarray(reference_state, dtype=np.complex128)
        self.optimizer = optimizer or LBFGSB(max_iterations=500)
        self.max_iterations = max_iterations
        self.gradient_tolerance = gradient_tolerance
        self.energy_tolerance = energy_tolerance
        self.reference_energy = reference_energy

    def pool_gradients(self, state: np.ndarray) -> np.ndarray:
        """<[H, A_k]> for every candidate, on the given state."""
        h_state = self.hamiltonian.apply(state)
        grads = np.empty(len(self.pool))
        for k, op in enumerate(self.pool):
            grads[k] = 2.0 * np.real(np.vdot(h_state, op.generator.apply(state)))
        return grads

    def run(self, verbose: bool = False) -> AdaptResult:
        chosen: List[PoolOperator] = []
        params = np.zeros(0)
        state = self.reference_state.copy()
        records: List[AdaptIteration] = []
        converged = False

        energy = float(np.real(self.hamiltonian.expectation(state)))
        for it in range(1, self.max_iterations + 1):
            grads = self.pool_gradients(state)
            k_best = int(np.argmax(np.abs(grads)))
            g_max = float(np.abs(grads[k_best]))
            if g_max < self.gradient_tolerance:
                converged = True
                break

            chosen.append(self.pool[k_best])
            params = np.concatenate([params, [0.0]])  # warm start

            objective = AnsatzObjective(
                self.reference_state,
                [op.generator for op in chosen],
                self.hamiltonian,
            )
            res = self.optimizer.minimize(
                objective.energy, params, gradient=objective.gradient
            )
            params = res.x
            energy = res.fun
            state = objective.prepare_state(params)

            err = (
                abs(energy - self.reference_energy)
                if self.reference_energy is not None
                else None
            )
            records.append(
                AdaptIteration(
                    iteration=it,
                    selected_label=self.pool[k_best].label,
                    max_gradient=g_max,
                    energy=energy,
                    error_vs_reference=err,
                    num_parameters=len(params),
                )
            )
            if verbose:
                err_s = f" dE={err*1000:.4f} mHa" if err is not None else ""
                print(
                    f"[adapt {it:3d}] +{self.pool[k_best].label:24s} "
                    f"|g|={g_max:.2e} E={energy:.8f}{err_s}"
                )
            if (
                self.energy_tolerance is not None
                and err is not None
                and err < self.energy_tolerance
            ):
                converged = True
                break

        return AdaptResult(
            energy=energy,
            parameters=params,
            operator_labels=[op.label for op in chosen],
            iterations=records,
            converged=converged,
            reference_energy=self.reference_energy,
        )
