"""Estimation strategies behind the VQE driver (paper §4.2).

One uniform interface over the three ways of turning (circuit,
observable) into a number, so the driver and the benchmarks can ablate
them cleanly:

* ``DirectEstimator``        — exact <H> from amplitudes (§4.2.2),
* ``CachingEstimator``       — measurement-faithful basis rotations on
                               a cached post-ansatz state (§4.1),
* ``SamplingEstimator``      — finite shots (the §4.2.1 baseline).
"""

from __future__ import annotations

from abc import ABC
from typing import Optional

import numpy as np

from repro import obs
from repro.ir.circuit import Circuit
from repro.ir.pauli import PauliSum
from repro.sim.expectation import (
    expectation_basis_rotated,
    expectation_direct,
    expectation_sampled,
)
from repro.sim.statevector import StatevectorSimulator
from repro.utils.profiling import Timer

__all__ = [
    "Estimator",
    "DirectEstimator",
    "CachingEstimator",
    "SamplingEstimator",
    "make_estimator",
]


class Estimator(ABC):
    """Turns a bound circuit + observable into an expectation value.

    ``timer`` (optional) is handed to every internally created
    :class:`StatevectorSimulator`, so driver-level profiles include
    the simulator's ``run_circuit`` sections.

    Simulators are pooled per register width: a VQE loop calls
    ``estimate`` thousands of times with the same-width circuit, and
    re-allocating a 2^n amplitude buffer (plus a second one inside the
    basis-rotation/sampling paths) per call was pure setup overhead.
    The pool is byte-capped (``pool_capacity_bytes``): an estimator
    handed many widths (scans, sweeps) evicts its least-recently-used
    simulators instead of pinning one amplitude buffer per width
    forever.
    """

    name = "abstract"

    def __init__(
        self,
        timer: Optional[Timer] = None,
        pool_capacity_bytes: int = 1 << 30,
    ) -> None:
        self.evaluations = 0
        self.timer = timer
        self._sims: dict = {}  # insertion order == LRU order
        self.pool_capacity_bytes = pool_capacity_bytes
        self.pool_bytes = 0
        self.pool_evictions = 0

    def _publish_pool_gauges(self) -> None:
        obs.gauge_set(
            "repro_estimator_pool_size",
            len(self._sims),
            help="Simulators pooled per register width",
            labels={"estimator": self.name},
        )
        obs.gauge_set(
            "repro_estimator_pool_bytes",
            float(self.pool_bytes),
            help="Amplitude bytes held by the estimator simulator pool",
            labels={"estimator": self.name},
        )

    def _simulator(self, num_qubits: int) -> StatevectorSimulator:
        sim = self._sims.get(num_qubits)
        if sim is None:
            sim = StatevectorSimulator(num_qubits, timer=self.timer)
            new_bytes = sim.state.nbytes
            # LRU eviction: never evict below one simulator — the one
            # we are about to use must stay, however large
            while (
                self._sims
                and self.pool_bytes + new_bytes > self.pool_capacity_bytes
            ):
                lru_width = next(iter(self._sims))
                evicted = self._sims.pop(lru_width)
                self.pool_bytes -= evicted.state.nbytes
                self.pool_evictions += 1
                if obs.enabled():
                    obs.inc(
                        "repro_estimator_pool_evictions_total",
                        help="Pooled simulators evicted by the byte cap",
                        labels={"estimator": self.name},
                    )
            self._sims[num_qubits] = sim
            self.pool_bytes += new_bytes
            if obs.enabled():
                obs.inc(
                    "repro_estimator_pool_misses_total",
                    help="Simulator pool misses (new simulator allocated)",
                    labels={"estimator": self.name},
                )
                self._publish_pool_gauges()
        else:
            # refresh recency: move the hit width to the MRU end
            self._sims.pop(num_qubits)
            self._sims[num_qubits] = sim
            if obs.enabled():
                obs.inc(
                    "repro_estimator_pool_hits_total",
                    help="Simulator pool hits (reused pooled simulator)",
                    labels={"estimator": self.name},
                )
        return sim

    def estimate(self, circuit: Circuit, observable: PauliSum) -> float:
        """Expectation <0|U^dag H U|0>."""
        self.evaluations += 1
        sim = self._simulator(circuit.num_qubits)
        sim.run(circuit)
        return self._evaluate(sim, observable)

    def estimate_plan(self, plan, params, observable: PauliSum) -> float:
        """Expectation from a compiled :class:`repro.sim.plan.ExecutionPlan`.

        The bind-free fast path of :meth:`estimate`: the pooled
        simulator executes the plan's prepacked kernel ops directly
        (with cross-evaluation prefix-state reuse), then the same
        evaluation strategy runs on the resulting state.  Subclasses
        that override :meth:`estimate` wholesale (instead of
        :meth:`_evaluate`) fall back to bind-and-estimate on the plan's
        source circuit, so custom estimators stay correct.
        """
        if type(self).estimate is not Estimator.estimate:
            return self.estimate(plan.source.bind(list(params)), observable)
        self.evaluations += 1
        sim = self._simulator(plan.num_qubits)
        sim.run_plan(plan, params)
        return self._evaluate(sim, observable)

    def estimate_plan_many(
        self, plan, rows: np.ndarray, observable: PauliSum
    ) -> np.ndarray:
        """Expectations for many parameter vectors of one plan.

        ``rows`` has shape (R, P); returns the R expectation values in
        order.  The base implementation evaluates sequentially; the
        serve-layer :class:`repro.serve.broker.BrokeredEstimator`
        overrides this to submit all R rows atomically so a whole
        finite-difference sweep lands in one batched-plan execution.
        """
        rows = np.asarray(rows, dtype=float)
        return np.array(
            [self.estimate_plan(plan, row, observable) for row in rows],
            dtype=float,
        )

    def _evaluate(self, sim: StatevectorSimulator, observable: PauliSum) -> float:
        """Turn the simulator's current state into an expectation value.

        Subclasses implement either this hook (and inherit both
        :meth:`estimate` and the plan fast path) or :meth:`estimate`
        itself (pre-plan subclasses; plans then fall back to bind).
        """
        raise NotImplementedError(
            "estimator subclasses implement _evaluate or override estimate"
        )


class DirectEstimator(Estimator):
    """NWQ-Sim's chemistry-mode fast path: no circuits beyond the
    ansatz, no sampling — exact amplitude-space contraction."""

    name = "direct"

    def _evaluate(self, sim: StatevectorSimulator, observable: PauliSum) -> float:
        return expectation_direct(sim.statevector(copy=False), observable)


class CachingEstimator(Estimator):
    """Cached post-ansatz state + per-group basis rotations.

    Exact like the direct estimator but runs the same circuit suffixes
    a hardware backend would; ``extra_gates`` accumulates the
    beyond-ansatz gate count (the caching-mode curve of Fig. 3).
    """

    name = "caching"

    def __init__(
        self,
        timer: Optional[Timer] = None,
        pool_capacity_bytes: int = 1 << 30,
    ) -> None:
        super().__init__(timer=timer, pool_capacity_bytes=pool_capacity_bytes)
        self.extra_gates = 0

    def _evaluate(self, sim: StatevectorSimulator, observable: PauliSum) -> float:
        state = sim.statevector(copy=True)
        value, gates = expectation_basis_rotated(
            state, observable, return_gate_count=True, sim=sim
        )
        self.extra_gates += gates
        return value


class SamplingEstimator(Estimator):
    """Finite-shot estimation — the traditional baseline (§4.2.1)."""

    name = "sampling"

    def __init__(
        self,
        shots_per_group: int = 4096,
        seed: int = 7,
        timer: Optional[Timer] = None,
        pool_capacity_bytes: int = 1 << 30,
    ):
        super().__init__(timer=timer, pool_capacity_bytes=pool_capacity_bytes)
        self.shots_per_group = shots_per_group
        self.rng = np.random.default_rng(seed)

    def _evaluate(self, sim: StatevectorSimulator, observable: PauliSum) -> float:
        state = sim.statevector(copy=True)
        return expectation_sampled(
            state, observable, self.shots_per_group, self.rng, sim=sim
        )


def make_estimator(name: str, **kwargs) -> Estimator:
    """Estimator factory: 'direct', 'caching', or 'sampling'."""
    table = {
        "direct": DirectEstimator,
        "caching": CachingEstimator,
        "sampling": SamplingEstimator,
    }
    try:
        return table[name](**kwargs)
    except KeyError:
        raise KeyError(f"unknown estimator {name!r}; choose from {sorted(table)}") from None
