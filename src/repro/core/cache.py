"""Post-ansatz state caching (paper §4.1).

VQE evaluates <H> = sum_g <psi(theta)| B_g^dag D_g B_g |psi(theta)>
over measurement groups g with basis circuits B_g.  Without caching,
every group re-executes the ansatz U(theta); with caching the ansatz
runs once per theta, the amplitudes are parked in device memory, and
each group applies only its (tiny) basis-change suffix to a copy.

``PostAnsatzCache`` models the memory hierarchy of §4.1.4 explicitly:
a configurable "device" capacity in bytes; states that do not fit are
spilled to "host" storage, and every access is tallied so the
device/host traffic is observable (the simulation keeps both in RAM —
the *accounting* is what the paper's design point is about).

``CachedEnergyEvaluator`` is the full caching execution mode: it owns
the gate ledger that Fig. 3 quantifies, counting ansatz preparations
and basis-change gates for both caching and non-caching strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.ir.circuit import Circuit
from repro.ir.pauli import PauliSum
from repro.sim.expectation import basis_change_circuit, diagonal_expectation
from repro.sim.statevector import StatevectorSimulator

__all__ = ["PostAnsatzCache", "CachedEnergyEvaluator", "GateLedger"]


@dataclass
class GateLedger:
    """Tally of gates executed, split by purpose (the Fig. 3 ledger)."""

    ansatz_executions: int = 0
    ansatz_gates: int = 0
    basis_gates: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def total_gates(self) -> int:
        return self.ansatz_gates + self.basis_gates


class PostAnsatzCache:
    """Device-memory cache of post-ansatz statevectors.

    Keys are parameter tuples (exact match — VQE optimizers re-query
    the same point for every Pauli group, which is precisely the reuse
    pattern caching exploits).  A small LRU of ``max_entries`` states
    is kept; ``device_capacity_bytes`` models the GPU-memory limit of
    §4.1.4: states beyond it are tracked as host-resident and accesses
    to them counted as spills.
    """

    def __init__(
        self,
        device_capacity_bytes: int = 4 * (1 << 30),
        max_entries: int = 4,
        mem_category: str = "post_ansatz_cache",
    ):
        self.device_capacity_bytes = device_capacity_bytes
        self.max_entries = max_entries
        self._store: Dict[Tuple[float, ...], np.ndarray] = {}
        self._order: List[Tuple[float, ...]] = []
        self._on_device: Dict[Tuple[float, ...], bool] = {}
        self.device_bytes_used = 0
        self.total_bytes = 0  # device + host resident (both live in RAM)
        self.hits = 0
        self.misses = 0
        self.host_spills = 0
        self.mem_category = mem_category
        self._mem = obs.mem_track(self, mem_category, 0)

    def _key(self, params: np.ndarray) -> Tuple[float, ...]:
        return tuple(float(p) for p in np.atleast_1d(params))

    def get(self, params: np.ndarray) -> Optional[np.ndarray]:
        key = self._key(params)
        state = self._store.get(key)
        if state is None:
            self.misses += 1
            return None
        self.hits += 1
        if not self._on_device.get(key, False):
            self.host_spills += 1  # host -> device fetch
        return state

    def put(self, params: np.ndarray, state: np.ndarray) -> None:
        key = self._key(params)
        if key in self._store:
            return
        while len(self._order) >= self.max_entries:
            evicted = self._order.pop(0)
            old = self._store.pop(evicted)
            self.total_bytes -= old.nbytes
            if self._on_device.pop(evicted, False):
                self.device_bytes_used -= old.nbytes
        fits = self.device_bytes_used + state.nbytes <= self.device_capacity_bytes
        self._store[key] = state
        self._on_device[key] = fits
        self.total_bytes += state.nbytes
        if fits:
            self.device_bytes_used += state.nbytes
        else:
            self.host_spills += 1  # device -> host spill at insert
        self._order.append(key)
        if not self._mem:  # late-bound: obs may be enabled after init
            self._mem = obs.mem_track(self, self.mem_category, 0)
        obs.mem_resize(self._mem, self.total_bytes)

    def __len__(self) -> int:
        return len(self._store)


class CachedEnergyEvaluator:
    """Energy evaluation with optional post-ansatz caching.

    Parameters
    ----------
    ansatz:
        Parameterized circuit U(theta) *including* reference prep.
    hamiltonian:
        Pauli observable.
    use_caching:
        The paper's optimization toggle: with ``False`` the evaluator
        faithfully re-executes the ansatz for every measurement group
        (the baseline whose gate count explodes in Fig. 3).
    group_terms:
        Measure qubit-wise-commuting groups together (one basis
        rotation per group); disable to model per-term measurement.
    """

    def __init__(
        self,
        ansatz: Circuit,
        hamiltonian: PauliSum,
        use_caching: bool = True,
        group_terms: bool = True,
        cache: Optional[PostAnsatzCache] = None,
    ):
        if ansatz.num_qubits != hamiltonian.num_qubits:
            raise ValueError("ansatz/observable width mismatch")
        self.ansatz = ansatz
        self.hamiltonian = hamiltonian
        self.use_caching = use_caching
        self.cache = cache or PostAnsatzCache()
        self.ledger = GateLedger()
        self._sim = StatevectorSimulator(ansatz.num_qubits)
        if group_terms:
            self._groups = hamiltonian.group_qubitwise_commuting()
        else:
            self._groups = [[(c, p)] for c, p in hamiltonian]
        self._basis_circuits = [
            basis_change_circuit([p for _, p in g], ansatz.num_qubits)
            for g in self._groups
        ]

    @property
    def num_groups(self) -> int:
        return len(self._groups)

    def _prepare(self, params: np.ndarray) -> np.ndarray:
        if self.ansatz.num_parameters:
            from repro.sim.plan import compile_circuit  # lazy: avoids cycle

            plan = compile_circuit(self.ansatz)
            state = self._sim.run_plan(plan, params)
            gates = plan.num_ops
        else:
            state = self._sim.run(self.ansatz)
            gates = len(self.ansatz)
        self.ledger.ansatz_executions += 1
        self.ledger.ansatz_gates += gates
        return state.copy()

    def energy(self, params: np.ndarray) -> float:
        with obs.span(
            "cache.energy_eval", groups=self.num_groups, caching=self.use_caching
        ):
            return self._energy_impl(params)

    def _energy_impl(self, params: np.ndarray) -> float:
        params = np.atleast_1d(np.asarray(params, dtype=float))
        cached: Optional[np.ndarray] = None
        if self.use_caching:
            cached = self.cache.get(params)
            if cached is None:
                cached = self._prepare(params)
                self.cache.put(params, cached)
                self.ledger.cache_misses += 1
                if obs.enabled():
                    obs.inc("repro_cache_misses_total", help="Post-ansatz cache misses")
            else:
                self.ledger.cache_hits += 1
                if obs.enabled():
                    obs.inc("repro_cache_hits_total", help="Post-ansatz cache hits")

        total = 0.0
        for group, basis in zip(self._groups, self._basis_circuits):
            strings = [p for _, p in group]
            if all(p.is_identity for p in strings):
                total += sum(c.real for c, _ in group)
                continue
            if self.use_caching:
                self._sim.set_state(cached, copy=True)
            else:
                self._prepare(params)  # faithful re-execution per group
            self._sim.apply_circuit(basis)
            self.ledger.basis_gates += len(basis)
            probs = self._sim.probabilities()
            for coeff, pstr in group:
                if pstr.is_identity:
                    total += coeff.real
                else:
                    total += coeff.real * diagonal_expectation(
                        probs, pstr.x | pstr.z
                    )
        return total
