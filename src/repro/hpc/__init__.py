"""HPC execution substrate: simulated communicator, distributed
partitioned statevector, machine performance models, batch scheduler."""

from repro.hpc.cluster import MACHINES, Machine, get_machine
from repro.hpc.comm import CommStats, SimComm
from repro.hpc.distributed import DistributedStatevector
from repro.hpc.perfmodel import (
    SimulatedTime,
    count_exchanges,
    estimate_circuit_time,
    max_qubits_for_memory,
    strong_scaling_curve,
    weak_scaling_curve,
)
from repro.hpc.ensemble import EnsembleExecutor, EnsembleResult
from repro.hpc.scheduler import BatchScheduler, Job, Schedule

__all__ = [
    "SimComm",
    "CommStats",
    "DistributedStatevector",
    "Machine",
    "MACHINES",
    "get_machine",
    "SimulatedTime",
    "estimate_circuit_time",
    "count_exchanges",
    "strong_scaling_curve",
    "weak_scaling_curve",
    "max_qubits_for_memory",
    "BatchScheduler",
    "Job",
    "Schedule",
    "EnsembleExecutor",
    "EnsembleResult",
]
