"""HPC execution substrate: simulated communicator, distributed
partitioned statevector, machine performance models, batch scheduler."""

from repro.hpc.cluster import MACHINES, Machine, get_machine
from repro.hpc.comm import CommStats, SimComm
from repro.hpc.distributed import DistributedStatevector
from repro.hpc.faults import (
    FaultError,
    FaultEvent,
    FaultInjector,
    FaultLedger,
    FaultSpec,
    RankFailure,
    TransientCommError,
)
from repro.hpc.perfmodel import (
    SimulatedClock,
    SimulatedTime,
    campaign_runtime_with_failures,
    checkpoint_write_time,
    count_exchanges,
    estimate_circuit_time,
    max_qubits_for_memory,
    optimal_checkpoint_period,
    strong_scaling_curve,
    weak_scaling_curve,
)
from repro.hpc.ensemble import EnsembleExecutor, EnsembleResult
from repro.hpc.scheduler import BatchScheduler, Job, Schedule

__all__ = [
    "SimComm",
    "CommStats",
    "DistributedStatevector",
    "Machine",
    "MACHINES",
    "get_machine",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultLedger",
    "FaultSpec",
    "RankFailure",
    "TransientCommError",
    "SimulatedTime",
    "SimulatedClock",
    "estimate_circuit_time",
    "count_exchanges",
    "strong_scaling_curve",
    "weak_scaling_curve",
    "max_qubits_for_memory",
    "checkpoint_write_time",
    "optimal_checkpoint_period",
    "campaign_runtime_with_failures",
    "BatchScheduler",
    "Job",
    "Schedule",
    "EnsembleExecutor",
    "EnsembleResult",
]
