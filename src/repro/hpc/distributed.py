"""Distributed partitioned statevector (the SV-Sim / NWQ-Sim scheme).

The 2^n amplitude vector is split over R = 2^r ranks; rank k owns the
contiguous slice whose top r index bits equal k.  Qubits therefore
come in two kinds at any moment:

* **local** physical positions ``0 .. L-1`` (L = n - r): gates apply
  embarrassingly parallel within each rank's slice;
* **global** positions ``L .. n-1`` (the rank bits): touching one
  requires inter-rank amplitude exchange.

Gates on global qubits are handled with the communication-avoiding
*relocation* strategy real distributed simulators use: the global
qubit is swapped with a local one (one pairwise half-slice exchange
between partner ranks), the logical->physical layout table is updated,
and the gate then runs locally.  Repeated gates on the same qubit pay
no further communication — this is where distributed simulation wins
or loses, and the exchange counter + ``SimComm`` byte ledger make the
cost observable for the scaling benchmarks.

Expectation values are computed term-by-term with at most one
half-duplex slice exchange per distinct global-X pattern and a scalar
allreduce (§4.2 direct method, distributed).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.obs.perf import RANK_COMPUTE_COUNTER
from repro.hpc.comm import SimComm
from repro.hpc.faults import FaultInjector
from repro.utils.retry import RetryPolicy
from repro.ir.circuit import Circuit
from repro.ir.gates import Gate
from repro.ir.pauli import PauliSum
from repro.sim import kernels
from repro.utils.bitops import (
    I_POW,
    basis_indices,
    count_set_bits,
    insert_zero_bit,
    popcount,
)

__all__ = ["DistributedStatevector"]


class DistributedStatevector:
    """A 2^n statevector partitioned over 2^r simulated ranks."""

    def __init__(
        self,
        num_qubits: int,
        num_ranks: int,
        comm: Optional[SimComm] = None,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if num_ranks < 1 or (num_ranks & (num_ranks - 1)) != 0:
            raise ValueError("num_ranks must be a power of two")
        r = int(math.log2(num_ranks))
        if num_qubits - r < 2:
            raise ValueError(
                "each rank must keep at least 2 local qubits "
                f"(n={num_qubits}, ranks={num_ranks})"
            )
        self.num_qubits = num_qubits
        self.num_ranks = num_ranks
        self.rank_bits = r
        self.local_qubits = num_qubits - r
        self.local_dim = 1 << self.local_qubits
        if comm is None:
            comm = SimComm(
                num_ranks, fault_injector=fault_injector, retry_policy=retry_policy
            )
        elif fault_injector is not None or retry_policy is not None:
            raise ValueError(
                "pass faults/retry via the comm when supplying one explicitly"
            )
        self.comm = comm
        # slices[k] = amplitudes with top bits == k
        self.slices: List[np.ndarray] = [
            np.zeros(self.local_dim, dtype=np.complex128) for _ in range(num_ranks)
        ]
        self.slices[0][0] = 1.0
        for k, s in enumerate(self.slices):
            obs.mem_track(self, "dsv_slice", s.nbytes, rank=k)
        # layout[logical qubit] = physical position; positions >= local_qubits
        # are rank bits.
        self.layout = list(range(num_qubits))
        self.exchanges = 0
        self.gates_applied = 0
        self._swap_cursor = 0
        # wall seconds each rank spent in local kernel work, filled
        # only while observability is enabled (per-rank attribution)
        self.rank_compute_s: List[float] = [0.0] * num_ranks

    # -- state management ------------------------------------------------------

    def reset(self) -> None:
        for s in self.slices:
            s.fill(0)
        self.slices[0][0] = 1.0
        self.layout = list(range(self.num_qubits))
        self.exchanges = 0
        self.gates_applied = 0
        self.rank_compute_s = [0.0] * self.num_ranks

    def gather(self) -> np.ndarray:
        """Full statevector in *logical* qubit order (root-side check)."""
        phys = self.comm.gather(self.slices)
        if self.layout == list(range(self.num_qubits)):
            return phys.copy()
        # Un-permute: logical index bits live at physical positions layout[q].
        n = self.num_qubits
        idx = np.arange(1 << n, dtype=np.int64)
        logical_idx = np.zeros_like(idx)
        for q in range(n):
            bit = (idx >> self.layout[q]) & 1
            logical_idx |= bit << q
        out = np.zeros_like(phys)
        out[logical_idx] = phys
        return out

    def memory_per_rank_bytes(self) -> int:
        return self.slices[0].nbytes

    # -- layout management -----------------------------------------------------------

    def _physical(self, logical: int) -> int:
        return self.layout[logical]

    def _swap_physical(self, local_pos: int, global_pos: int) -> None:
        """Swap index bits (local_pos, global_pos) of the physical
        addressing: a pairwise half-slice exchange between partners."""
        L = self.local_qubits
        if not (local_pos < L <= global_pos):
            raise ValueError("expected one local and one global position")
        gb = global_pos - L
        half = np.arange(1 << (L - 1), dtype=np.int64)
        base = insert_zero_bit(half, local_pos)
        buffers: List[Optional[np.ndarray]] = [None] * self.num_ranks
        positions: List[Optional[np.ndarray]] = [None] * self.num_ranks
        partners = [k ^ (1 << gb) for k in range(self.num_ranks)]
        for k in range(self.num_ranks):
            b_g = (k >> gb) & 1
            # elements whose local bit != rank bit move to the partner
            idx = base | ((1 - b_g) << local_pos)
            buffers[k] = self.slices[k][idx].copy()
            positions[k] = idx
        # staged send + receive half-slices live simultaneously
        scratch = obs.mem_alloc(
            "dsv_scratch", 2 * sum(b.nbytes for b in buffers if b is not None)
        )
        received = self.comm.exchange(buffers, partners)
        for k in range(self.num_ranks):
            self.slices[k][positions[k]] = received[k]
        obs.mem_free(scratch)
        self.exchanges += 1
        # update layout: logical qubits at these physical positions swap
        inv = {p: q for q, p in enumerate(self.layout)}
        ql, qg = inv[local_pos], inv[global_pos]
        self.layout[ql], self.layout[qg] = global_pos, local_pos

    def _ensure_local(self, logical_qubits: Sequence[int]) -> List[int]:
        """Relocate the given logical qubits to local physical slots;
        returns their (local) physical positions."""
        L = self.local_qubits
        involved = set(logical_qubits)
        for q in logical_qubits:
            if self.layout[q] >= L:
                # pick a local victim slot not hosting an involved qubit
                inv = {p: ql for ql, p in enumerate(self.layout)}
                victim = None
                for _ in range(L):
                    cand = self._swap_cursor % L
                    self._swap_cursor += 1
                    if inv[cand] not in involved:
                        victim = cand
                        break
                if victim is None:
                    raise RuntimeError("no free local slot for relocation")
                self._swap_physical(victim, self.layout[q])
        return [self.layout[q] for q in logical_qubits]

    # -- execution ----------------------------------------------------------------------

    def apply_gate(self, gate: Gate) -> None:
        if self.comm.fault_injector is not None:
            self.comm.fault_injector.check_gate_faults(self.gates_applied)
        phys = self._ensure_local(gate.qubits)
        self.gates_applied += 1
        L = self.local_qubits
        m = gate.to_matrix()
        if len(phys) == 1:
            kernel = lambda s: kernels.apply_1q(s, m, phys[0], L)  # noqa: E731
        elif len(phys) == 2:
            kernel = lambda s: kernels.apply_2q(s, m, phys[0], phys[1], L)  # noqa: E731
        else:
            kernel = lambda s: kernels.apply_kq_dense(s, m, phys, L)  # noqa: E731
        if obs.enabled():
            # per-rank attribution: time each rank's slice separately
            for k, s in enumerate(self.slices):
                t0 = time.perf_counter()
                kernel(s)
                self.rank_compute_s[k] += time.perf_counter() - t0
        else:
            for s in self.slices:
                kernel(s)

    def run(self, circuit: Circuit, reset: bool = True) -> None:
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit width mismatch")
        if circuit.num_parameters:
            from repro.sim.plan import unbound_parameter_message

            raise ValueError(unbound_parameter_message(circuit))
        if reset:
            self.reset()
        exchanges_before = self.exchanges
        compute_before = list(self.rank_compute_s)
        with obs.span(
            "dsv.run_circuit",
            category="compute",
            gates=len(circuit.gates),
            qubits=self.num_qubits,
            ranks=self.num_ranks,
        ) as sp:
            for g in circuit.gates:
                self.apply_gate(g)
        if obs.enabled():
            self._flush_rank_compute(sp, compute_before)
            sp.set_attribute("exchanges", self.exchanges - exchanges_before)
            obs.inc(
                "repro_dsv_gates_total",
                len(circuit.gates),
                help="Gates applied by the distributed simulator",
            )
            obs.inc(
                "repro_dsv_exchanges_total",
                self.exchanges - exchanges_before,
                help="Slice exchanges performed by the distributed simulator",
            )

    def run_plan(self, plan, params: Sequence[float] = (), reset: bool = True) -> None:
        """Execute a compiled :class:`repro.sim.plan.ExecutionPlan`
        slice-by-slice.

        Each plan op is resolved to its (kind, payload) form with the
        parameters substituted, the op's logical qubits are relocated to
        local physical slots exactly as in :meth:`apply_gate`, and the
        matching kernel runs on every rank's slice — no ``Gate``
        objects and no bound-circuit copies on the distributed path
        either.  Prefix-state reuse does not apply here (the state lives
        in per-rank slices under a mutable layout).

        Plans containing full-register diagonal folds are rejected: a
        2^n diagonal indexed by *physical* position cannot be applied
        per-slice under relocation.  Compile with
        ``fold_full_diag=False`` for distributed execution.
        """
        if plan.num_qubits != self.num_qubits:
            raise ValueError("plan width mismatch")
        if any(op.kind == "diag_full" for op in plan.ops):
            raise ValueError(
                "plan contains full-register diagonal folds; compile with "
                "fold_full_diag=False for distributed execution"
            )
        params = plan._check_params(params)
        if reset:
            self.reset()
        exchanges_before = self.exchanges
        compute_before = list(self.rank_compute_s)
        with obs.span(
            "dsv.run_plan",
            category="compute",
            ops=plan.num_ops,
            qubits=self.num_qubits,
            ranks=self.num_ranks,
        ) as sp:
            for op in plan.ops:
                self._apply_plan_op(op, params)
        if obs.enabled():
            self._flush_rank_compute(sp, compute_before)
            sp.set_attribute("exchanges", self.exchanges - exchanges_before)
            obs.inc(
                "repro_dsv_gates_total",
                plan.num_ops,
                help="Gates applied by the distributed simulator",
            )
            obs.inc(
                "repro_dsv_exchanges_total",
                self.exchanges - exchanges_before,
                help="Slice exchanges performed by the distributed simulator",
            )

    def _apply_plan_op(self, op, params: np.ndarray) -> None:
        if self.comm.fault_injector is not None:
            self.comm.fault_injector.check_gate_faults(self.gates_applied)
        kind, payload = op.resolve(params)
        phys = self._ensure_local(op.qubits)
        self.gates_applied += 1
        L = self.local_qubits
        if kind == "x":
            kernel = lambda s: kernels.apply_x(s, phys[0], L)  # noqa: E731
        elif kind == "cx":
            kernel = lambda s: kernels.apply_cx(s, phys[0], phys[1], L)  # noqa: E731
        elif kind == "diag1":
            kernel = lambda s: kernels.apply_diag_1q(  # noqa: E731
                s, payload[0], payload[1], phys[0], L
            )
        elif kind == "diag2":
            kernel = lambda s: kernels.apply_diag_2q(  # noqa: E731
                s, payload, phys[0], phys[1], L
            )
        elif len(phys) == 1:
            kernel = lambda s: kernels.apply_1q(s, payload, phys[0], L)  # noqa: E731
        elif len(phys) == 2:
            kernel = lambda s: kernels.apply_2q(s, payload, phys[0], phys[1], L)  # noqa: E731
        else:
            kernel = lambda s: kernels.apply_kq_dense(s, payload, phys, L)  # noqa: E731
        if obs.enabled():
            for k, s in enumerate(self.slices):
                t0 = time.perf_counter()
                kernel(s)
                self.rank_compute_s[k] += time.perf_counter() - t0
        else:
            for s in self.slices:
                kernel(s)

    def _flush_rank_compute(self, sp, compute_before: Sequence[float]) -> None:
        """Attach the per-rank compute-second delta to the enclosing
        span and the rank-labelled counters (observability enabled)."""
        delta = [
            now - before
            for now, before in zip(self.rank_compute_s, compute_before)
        ]
        sp.set_attribute("rank_compute_s", delta)
        for k, dt in enumerate(delta):
            if dt > 0.0:
                obs.inc(
                    RANK_COMPUTE_COUNTER,
                    dt,
                    help="Wall seconds each rank spent in local kernels",
                    labels={"rank": str(k)},
                )

    # -- observation -----------------------------------------------------------------------

    def norm(self) -> float:
        parts = [complex(np.vdot(s, s)) for s in self.slices]
        return float(np.sqrt(self.comm.allreduce(parts).real))

    def probabilities_local(self) -> List[np.ndarray]:
        return [np.abs(s) ** 2 for s in self.slices]

    def expectation(self, observable: PauliSum) -> float:
        """<psi|H|psi> with distributed direct evaluation.

        Terms are grouped by their global-X pattern so each pattern
        pays one full-slice pairwise exchange, then every term in the
        group reduces locally; one scalar allreduce finishes the job.
        """
        if observable.num_qubits != self.num_qubits:
            raise ValueError("observable width mismatch")
        exchanges_before = self.exchanges
        compute_before = list(self.rank_compute_s)
        with obs.span(
            "dsv.expectation",
            category="compute",
            terms=observable.num_terms,
            ranks=self.num_ranks,
        ) as sp:
            value = self._expectation_impl(observable)
        if obs.enabled():
            self._flush_rank_compute(sp, compute_before)
            sp.set_attribute("exchanges", self.exchanges - exchanges_before)
            obs.inc(
                "repro_dsv_expectations_total",
                help="Distributed direct expectation evaluations",
            )
        return value

    def _expectation_impl(self, observable: PauliSum) -> float:
        L = self.local_qubits
        local_mask = (1 << L) - 1

        # translate logical masks to physical bit positions
        def to_phys(mask: int) -> int:
            out = 0
            for q in range(self.num_qubits):
                if (mask >> q) & 1:
                    out |= 1 << self.layout[q]
            return out

        # Two-level grouping: by global-x pattern (one slice exchange
        # each), then by local x-mask (one gather each).  The per-term
        # local sign vectors are combined into one complex diagonal per
        # (rank, local x-mask) via a small matvec, so no rank pays a
        # full-vector pass per term — the distributed analogue of the
        # compiled x-mask batching in ``repro.ir.compiled``.
        groups: Dict[int, Dict[int, List[Tuple[int, int, complex]]]] = {}
        for (x, z), coeff in observable.terms.items():
            px, pz = to_phys(x), to_phys(z)
            groups.setdefault(px >> L, {}).setdefault(
                px & local_mask, []
            ).append((px, pz, coeff))

        jloc = basis_indices(L)
        total = 0.0 + 0.0j
        for rank_xor, by_xloc in groups.items():
            scratch = 0
            if rank_xor == 0:
                partner_slices = self.slices
            else:
                partners = [k ^ rank_xor for k in range(self.num_ranks)]
                # full-state staging copy exchanged with the partners
                scratch = obs.mem_alloc(
                    "dsv_scratch", sum(s.nbytes for s in self.slices)
                )
                partner_slices = self.comm.exchange(
                    [s.copy() for s in self.slices], partners
                )
                self.exchanges += 1
            # Rank-independent precomputation, shared by every rank:
            # gather table, per-term sign rows, base weights, global-Z
            # masks (whose rank-dependent parity flips the weight sign).
            compiled = []
            for x_loc, terms in by_xloc.items():
                src = jloc ^ x_loc
                sign_rows = np.empty((len(terms), self.local_dim))
                base_w = np.empty(len(terms), dtype=np.complex128)
                gz_masks = np.empty(len(terms), dtype=np.int64)
                for t, (px, pz, coeff) in enumerate(terms):
                    z_loc = pz & local_mask
                    sign_rows[t] = 1.0 - 2.0 * (count_set_bits(src & z_loc) & 1)
                    base_w[t] = coeff * I_POW[popcount(px & pz) % 4]
                    gz_masks[t] = pz >> L
                compiled.append((src, sign_rows, base_w, gz_masks))
            timing = obs.enabled()
            per_rank = []
            for k in range(self.num_ranks):
                t0 = time.perf_counter() if timing else 0.0
                acc = 0.0 + 0.0j
                mine = self.slices[k]
                theirs = partner_slices[k]
                src_rank = k ^ rank_xor  # global Z sign comes from the source slice
                for src, sign_rows, base_w, gz_masks in compiled:
                    gpar = count_set_bits(gz_masks & src_rank) & 1
                    weights = base_w * (1.0 - 2.0 * gpar)
                    diag = weights @ sign_rows
                    acc += np.vdot(mine, theirs[src] * diag)
                per_rank.append(acc)
                if timing:
                    self.rank_compute_s[k] += time.perf_counter() - t0
            obs.mem_free(scratch)
            total += self.comm.allreduce(per_rank)
        if abs(total.imag) > 1e-8 * max(1.0, abs(total.real)):
            raise ValueError("non-Hermitian observable")
        return float(total.real)
