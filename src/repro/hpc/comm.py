"""Simulated MPI-style communicator with traffic accounting.

The real NWQ-Sim distributes the state vector over GPUs with
MPI/NVSHMEM.  Here every rank's data lives in one process, but all
inter-rank data movement is *routed through* ``SimComm`` using an
mpi4py-like buffer interface (pairwise ``exchange``, ``allreduce``,
``gather``), so

* the distributed algorithm is expressed exactly as it would be with
  mpi4py (ranks only touch their own slice + explicitly received
  buffers), and
* every message and byte is tallied, which the performance model
  (``repro.hpc.perfmodel``) converts into simulated wall-clock for the
  scaling studies.

Fault tolerance: a :class:`repro.hpc.faults.FaultInjector` can be
attached to inject rank crashes, transient message drops, payload
corruption (caught by a receiver-side checksum), and stragglers into
the exchange/allreduce paths.  Transient faults are survived by an
optional :class:`repro.utils.retry.RetryPolicy` whose backoff advances
a simulated clock; retry traffic and recovery latency are surfaced in
``CommStats`` next to the byte counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.obs.perf import RANK_COMM_COUNTER
from repro.hpc.faults import FaultInjector, RankFailure, TransientCommError
from repro.hpc.perfmodel import SimulatedClock
from repro.utils.retry import RetryPolicy

__all__ = ["CommStats", "SimComm"]


@dataclass
class CommStats:
    """Aggregate communication counters.

    Next to the aggregates, a per-pair ledger (``"src->dst"`` string
    keys, JSON-friendly) records every point-to-point message so the
    performance observatory can reconstruct the rank x rank
    communication matrix; ``pair_*`` totals always equal the
    ``point_to_point_*`` aggregates.
    """

    point_to_point_messages: int = 0
    point_to_point_bytes: int = 0
    allreduce_calls: int = 0
    allreduce_bytes: int = 0
    gather_calls: int = 0
    gather_bytes: int = 0
    # fault/recovery counters
    transient_errors: int = 0
    corrupted_messages: int = 0
    straggler_ops: int = 0
    retries: int = 0
    retry_backoff_s: float = 0.0
    # per-fault-kind breakdowns (kind -> count), mirrored as labelled
    # ``repro.obs`` counters so a health view can tell transient
    # exchange faults from corruption from stragglers at a glance
    faults_by_kind: Dict[str, int] = field(default_factory=dict)
    retries_by_kind: Dict[str, int] = field(default_factory=dict)
    # rank x rank point-to-point ledger ("src->dst" -> count)
    pair_messages: Dict[str, int] = field(default_factory=dict)
    pair_bytes: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.point_to_point_bytes + self.allreduce_bytes + self.gather_bytes

    def record_message(self, src: int, dst: int, nbytes: int) -> None:
        """Tally one point-to-point message in both the aggregate and
        the per-pair ledger."""
        self.point_to_point_messages += 1
        self.point_to_point_bytes += nbytes
        key = f"{src}->{dst}"
        self.pair_messages[key] = self.pair_messages.get(key, 0) + 1
        self.pair_bytes[key] = self.pair_bytes.get(key, 0) + nbytes

    def reset(self) -> None:
        self.point_to_point_messages = 0
        self.point_to_point_bytes = 0
        self.allreduce_calls = 0
        self.allreduce_bytes = 0
        self.gather_calls = 0
        self.gather_bytes = 0
        self.transient_errors = 0
        self.corrupted_messages = 0
        self.straggler_ops = 0
        self.retries = 0
        self.retry_backoff_s = 0.0
        self.faults_by_kind.clear()
        self.retries_by_kind.clear()
        self.pair_messages.clear()
        self.pair_bytes.clear()

    def record_fault(self, kind: str) -> None:
        """Tally one observed fault of ``kind`` in the per-kind ledger."""
        self.faults_by_kind[kind] = self.faults_by_kind.get(kind, 0) + 1


class SimComm:
    """A communicator over ``num_ranks`` simulated ranks.

    ``fault_injector`` and ``retry_policy`` are both optional; without
    them the communicator is the original happy-path implementation.
    With an injector but no retry policy, transient faults propagate
    to the caller; with both, transients are retried (retransmitted
    bytes are re-counted — retry traffic is real traffic) and only
    exhaustion or a rank crash escalates.
    """

    def __init__(
        self,
        num_ranks: int,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        clock: Optional[SimulatedClock] = None,
    ):
        if num_ranks < 1 or (num_ranks & (num_ranks - 1)) != 0:
            raise ValueError("num_ranks must be a power of two")
        self.num_ranks = num_ranks
        self.stats = CommStats()
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        self.clock = clock if clock is not None else SimulatedClock()

    # -- fault/retry plumbing ---------------------------------------------------

    def _with_retry(self, attempt: Callable[[], object]) -> object:
        """Run one comm operation, retrying transient faults when a
        policy is attached.  ``RetryExhaustedError`` (policy attached)
        or ``TransientCommError`` (no policy) escalates to the caller."""
        if self.fault_injector is None:
            return attempt()

        def counted() -> object:
            try:
                return attempt()
            except TransientCommError as err:
                self.stats.transient_errors += 1
                self._note_fault(getattr(err, "kind", "transient_exchange"))
                raise
            except RankFailure as err:
                self._note_fault("rank_crash")
                raise err

        if self.retry_policy is None:
            return counted()
        return self.retry_policy.call(
            counted,
            retry_on=(TransientCommError,),
            clock=self.clock,
            on_retry=self._on_retry,
        )

    def _note_fault(self, kind: str) -> None:
        """Per-kind fault bookkeeping: CommStats ledger + labelled
        obs counter (``repro_comm_faults_total{kind=...}``)."""
        self.stats.record_fault(kind)
        if obs.enabled():
            obs.inc(
                "repro_comm_faults_total",
                help="Comm-layer faults observed, by fault kind",
                labels={"kind": kind},
            )

    def _on_retry(self, attempt: int, delay: float, error: BaseException) -> None:
        self.stats.retries += 1
        self.stats.retry_backoff_s += delay
        kind = getattr(error, "kind", "transient_exchange")
        self.stats.retries_by_kind[kind] = (
            self.stats.retries_by_kind.get(kind, 0) + 1
        )
        if obs.enabled():
            obs.inc(
                "repro_comm_retries_by_kind_total",
                help="Comm-op retries, by the fault kind that forced them",
                labels={"kind": kind},
            )

    def _attribute_rank_time(
        self, seconds: float, participants: Optional[Sequence[int]] = None
    ) -> "List[float]":
        """Charge one collective's wall time to every participating
        rank (all ranks block in the operation) via the rank-labelled
        comm-seconds counter; returns the per-rank second vector for
        span attribution.  Only called with observability enabled."""
        ranks = range(self.num_ranks) if participants is None else participants
        per_rank = [0.0] * self.num_ranks
        for k in ranks:
            per_rank[k] = seconds
            obs.inc(
                RANK_COMM_COUNTER,
                seconds,
                help="Wall seconds each rank spent inside comm collectives",
                labels={"rank": str(k)},
            )
        return per_rank

    # -- point to point ---------------------------------------------------------

    def exchange(
        self, buffers: Sequence[Optional[np.ndarray]], partners: Sequence[int]
    ) -> List[Optional[np.ndarray]]:
        """Pairwise sendrecv: rank k sends ``buffers[k]`` to
        ``partners[k]`` and receives what its partner sent.

        Partnerships must be symmetric (partners[partners[k]] == k).
        ``None`` buffers mean the rank sits out this round.
        """
        if len(buffers) != self.num_ranks or len(partners) != self.num_ranks:
            raise ValueError("one buffer and partner per rank required")
        if not obs.enabled():
            return self._with_retry(lambda: self._exchange_attempt(buffers, partners))
        bytes_before = self.stats.point_to_point_bytes
        retries_before = self.stats.retries
        with obs.span("comm.exchange", category="comm", ranks=self.num_ranks) as sp:
            t0 = time.perf_counter()
            out = self._with_retry(lambda: self._exchange_attempt(buffers, partners))
            dt = time.perf_counter() - t0
        participants = [k for k, b in enumerate(buffers) if b is not None]
        sp.set_attribute("rank_comm_s", self._attribute_rank_time(dt, participants))
        moved = self.stats.point_to_point_bytes - bytes_before
        sp.set_attribute("bytes", moved)
        sp.set_attribute("sim_time_s", self.clock.now)
        obs.inc(
            "repro_comm_exchange_calls_total", help="Pairwise slice exchanges"
        )
        obs.inc(
            "repro_comm_p2p_bytes_total",
            moved,
            help="Point-to-point bytes moved (retransmissions included)",
        )
        retried = self.stats.retries - retries_before
        if retried:
            obs.inc("repro_comm_retries_total", retried, help="Comm-op retries")
        return out

    def _exchange_attempt(
        self, buffers: Sequence[Optional[np.ndarray]], partners: Sequence[int]
    ) -> List[Optional[np.ndarray]]:
        payloads: Sequence[Optional[np.ndarray]] = buffers
        if self.fault_injector is not None:
            op = self.fault_injector.next_comm_op()
            multiplier = self.fault_injector.check_comm_faults(op, "exchange")
            if multiplier > 1.0:
                self.stats.straggler_ops += 1
                self._note_fault("straggler")
            payloads, detectable = self.fault_injector.corrupt_payloads(op, buffers)
            if detectable:
                # the garbled message still crossed the wire before the
                # checksum rejected it
                self.stats.corrupted_messages += 1
                for k, (buf, p) in enumerate(zip(payloads, partners)):
                    if buf is not None and p != k:
                        self.stats.record_message(k, p, buf.nbytes)
                raise TransientCommError(
                    "checksum mismatch on exchanged slice", kind="corruption"
                )
        received: List[Optional[np.ndarray]] = [None] * self.num_ranks
        for k, (buf, p) in enumerate(zip(payloads, partners)):
            if buf is None:
                continue
            if p == k:
                received[k] = buf
                continue
            if partners[p] != k:
                raise ValueError(f"asymmetric partnership: {k}->{p}, {p}->{partners[p]}")
            received[p] = buf
            self.stats.record_message(k, p, buf.nbytes)
        return received

    # -- collectives ----------------------------------------------------------------

    def allreduce(self, values: Sequence[complex]) -> complex:
        """Sum a per-rank scalar across ranks (tree allreduce model)."""
        if len(values) != self.num_ranks:
            raise ValueError("one value per rank required")
        if not obs.enabled():
            return self._with_retry(lambda: self._allreduce_attempt(values))
        bytes_before = self.stats.allreduce_bytes
        with obs.span("comm.allreduce", category="comm", ranks=self.num_ranks) as sp:
            t0 = time.perf_counter()
            out = self._with_retry(lambda: self._allreduce_attempt(values))
            dt = time.perf_counter() - t0
        sp.set_attribute("rank_comm_s", self._attribute_rank_time(dt))
        self._record_allreduce_metrics(sp, bytes_before)
        return out

    def _allreduce_attempt(self, values: Sequence[complex]) -> complex:
        if self.fault_injector is not None:
            op = self.fault_injector.next_comm_op()
            if self.fault_injector.check_comm_faults(op, "allreduce") > 1.0:
                self.stats.straggler_ops += 1
                self._note_fault("straggler")
        total = complex(np.sum(np.asarray(values, dtype=np.complex128)))
        self.stats.allreduce_calls += 1
        # tree: 2 * log2(R) scalar messages of 16 bytes
        rounds = max(1, int(np.log2(self.num_ranks))) if self.num_ranks > 1 else 0
        self.stats.allreduce_bytes += 16 * 2 * rounds * max(1, self.num_ranks // 2)
        return total

    def allreduce_array(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Elementwise-sum arrays across ranks."""
        if len(arrays) != self.num_ranks:
            raise ValueError("one array per rank required")
        if not obs.enabled():
            return self._with_retry(lambda: self._allreduce_array_attempt(arrays))
        bytes_before = self.stats.allreduce_bytes
        with obs.span("comm.allreduce_array", category="comm", ranks=self.num_ranks) as sp:
            t0 = time.perf_counter()
            out = self._with_retry(lambda: self._allreduce_array_attempt(arrays))
            dt = time.perf_counter() - t0
        sp.set_attribute("rank_comm_s", self._attribute_rank_time(dt))
        self._record_allreduce_metrics(sp, bytes_before)
        return out

    def _allreduce_array_attempt(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        if self.fault_injector is not None:
            op = self.fault_injector.next_comm_op()
            if self.fault_injector.check_comm_faults(op, "allreduce") > 1.0:
                self.stats.straggler_ops += 1
                self._note_fault("straggler")
        out = np.sum(np.stack(arrays), axis=0)
        self.stats.allreduce_calls += 1
        rounds = max(1, int(np.log2(self.num_ranks))) if self.num_ranks > 1 else 0
        self.stats.allreduce_bytes += out.nbytes * 2 * rounds
        return out

    def _record_allreduce_metrics(self, sp, bytes_before: int) -> None:
        moved = self.stats.allreduce_bytes - bytes_before
        sp.set_attribute("bytes", moved)
        sp.set_attribute("sim_time_s", self.clock.now)
        obs.inc("repro_comm_allreduce_calls_total", help="Allreduce collectives")
        obs.inc(
            "repro_comm_allreduce_bytes_total", moved, help="Allreduce bytes moved"
        )

    def gather(self, slices: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank slices on a (virtual) root."""
        if len(slices) != self.num_ranks:
            raise ValueError("one slice per rank required")
        with obs.span("comm.gather", category="comm", ranks=self.num_ranks) as sp:
            t0 = time.perf_counter()
            out = np.concatenate(list(slices))
            dt = time.perf_counter() - t0
        if obs.enabled():
            sp.set_attribute("rank_comm_s", self._attribute_rank_time(dt))
        self.stats.gather_calls += 1
        self.stats.gather_bytes += sum(s.nbytes for s in slices[1:])
        return out
