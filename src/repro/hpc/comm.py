"""Simulated MPI-style communicator with traffic accounting.

The real NWQ-Sim distributes the state vector over GPUs with
MPI/NVSHMEM.  Here every rank's data lives in one process, but all
inter-rank data movement is *routed through* ``SimComm`` using an
mpi4py-like buffer interface (pairwise ``exchange``, ``allreduce``,
``gather``), so

* the distributed algorithm is expressed exactly as it would be with
  mpi4py (ranks only touch their own slice + explicitly received
  buffers), and
* every message and byte is tallied, which the performance model
  (``repro.hpc.perfmodel``) converts into simulated wall-clock for the
  scaling studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["CommStats", "SimComm"]


@dataclass
class CommStats:
    """Aggregate communication counters."""

    point_to_point_messages: int = 0
    point_to_point_bytes: int = 0
    allreduce_calls: int = 0
    allreduce_bytes: int = 0
    gather_calls: int = 0
    gather_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.point_to_point_bytes + self.allreduce_bytes + self.gather_bytes

    def reset(self) -> None:
        self.point_to_point_messages = 0
        self.point_to_point_bytes = 0
        self.allreduce_calls = 0
        self.allreduce_bytes = 0
        self.gather_calls = 0
        self.gather_bytes = 0


class SimComm:
    """A communicator over ``num_ranks`` simulated ranks."""

    def __init__(self, num_ranks: int):
        if num_ranks < 1 or (num_ranks & (num_ranks - 1)) != 0:
            raise ValueError("num_ranks must be a power of two")
        self.num_ranks = num_ranks
        self.stats = CommStats()

    # -- point to point ---------------------------------------------------------

    def exchange(
        self, buffers: Sequence[Optional[np.ndarray]], partners: Sequence[int]
    ) -> List[Optional[np.ndarray]]:
        """Pairwise sendrecv: rank k sends ``buffers[k]`` to
        ``partners[k]`` and receives what its partner sent.

        Partnerships must be symmetric (partners[partners[k]] == k).
        ``None`` buffers mean the rank sits out this round.
        """
        if len(buffers) != self.num_ranks or len(partners) != self.num_ranks:
            raise ValueError("one buffer and partner per rank required")
        received: List[Optional[np.ndarray]] = [None] * self.num_ranks
        for k, (buf, p) in enumerate(zip(buffers, partners)):
            if buf is None:
                continue
            if p == k:
                received[k] = buf
                continue
            if partners[p] != k:
                raise ValueError(f"asymmetric partnership: {k}->{p}, {p}->{partners[p]}")
            received[p] = buf
            self.stats.point_to_point_messages += 1
            self.stats.point_to_point_bytes += buf.nbytes
        return received

    # -- collectives ----------------------------------------------------------------

    def allreduce(self, values: Sequence[complex]) -> complex:
        """Sum a per-rank scalar across ranks (tree allreduce model)."""
        if len(values) != self.num_ranks:
            raise ValueError("one value per rank required")
        total = complex(np.sum(np.asarray(values, dtype=np.complex128)))
        self.stats.allreduce_calls += 1
        # tree: 2 * log2(R) scalar messages of 16 bytes
        rounds = max(1, int(np.log2(self.num_ranks))) if self.num_ranks > 1 else 0
        self.stats.allreduce_bytes += 16 * 2 * rounds * max(1, self.num_ranks // 2)
        return total

    def allreduce_array(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Elementwise-sum arrays across ranks."""
        if len(arrays) != self.num_ranks:
            raise ValueError("one array per rank required")
        out = np.sum(np.stack(arrays), axis=0)
        self.stats.allreduce_calls += 1
        rounds = max(1, int(np.log2(self.num_ranks))) if self.num_ranks > 1 else 0
        self.stats.allreduce_bytes += out.nbytes * 2 * rounds
        return out

    def gather(self, slices: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank slices on a (virtual) root."""
        if len(slices) != self.num_ranks:
            raise ValueError("one slice per rank required")
        out = np.concatenate(list(slices))
        self.stats.gather_calls += 1
        self.stats.gather_bytes += sum(s.nbytes for s in slices[1:])
        return out
