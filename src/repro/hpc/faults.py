"""Deterministic fault injection for the simulated HPC substrate.

Multi-hour distributed VQE campaigns on shared machines meet rank
crashes, dropped/corrupted messages, stragglers, and walltime kills as
a matter of course.  This module makes those events *injectable* so
the recovery machinery (``repro.utils.retry``, ``repro.core.campaign``,
scheduler degradation) is testable and benchmarkable:

* ``FaultSpec`` declares one fault source — a rank crash at a given
  step or with a per-operation probability, a transient exchange
  failure, message corruption via bit flips, or a straggler latency
  multiplier.
* ``FaultInjector`` owns a seeded RNG and evaluates every spec in
  declaration order at each hook point, so a given (specs, seed) pair
  replays the exact same fault sequence on every run.
* Every injected event lands in a ``FaultLedger`` — the fault-side
  sibling of the ``CommStats`` byte ledger — so tests can assert that
  each fault was seen, survived, or escalated.

Hook points: ``SimComm.exchange`` / ``SimComm.allreduce`` (comm scope),
``DistributedStatevector.apply_gate`` (gate scope), the
``CampaignRunner`` iteration loop (campaign scope), and
``EnsembleExecutor`` job dispatch (batch scope).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs import events as obs_events

__all__ = [
    "FaultError",
    "RankFailure",
    "TransientCommError",
    "FaultSpec",
    "FaultEvent",
    "FaultLedger",
    "FaultInjector",
]

KINDS = ("rank_crash", "transient_exchange", "corruption", "straggler")
SCOPES = ("comm", "gate", "campaign", "batch")


class FaultError(RuntimeError):
    """Base class for injected faults."""


class RankFailure(FaultError):
    """A rank died.  Not retryable at the comm layer — recovery means
    rolling back to a checkpoint (campaign scope) or rescheduling the
    rank's jobs onto survivors (batch scope)."""

    def __init__(self, rank: int, step: int, scope: str):
        super().__init__(f"rank {rank} crashed at {scope} step {step}")
        self.rank = rank
        self.step = step
        self.scope = scope


class TransientCommError(FaultError):
    """A recoverable communication fault (dropped or corrupted
    message).  The exchange path retries these under a
    :class:`repro.utils.retry.RetryPolicy`.

    ``kind`` tags the underlying fault (``transient_exchange`` for a
    dropped message, ``corruption`` for a checksum-rejected payload)
    so retry metrics can be attributed per fault kind.
    """

    def __init__(self, message: str, kind: str = "transient_exchange"):
        super().__init__(message)
        self.kind = kind


@dataclass
class FaultSpec:
    """One declarative fault source.

    Parameters
    ----------
    kind:
        ``rank_crash`` | ``transient_exchange`` | ``corruption`` |
        ``straggler``.
    rank:
        Affected rank (``None`` = rank 0 for crashes, all ranks for
        corruption/stragglers).
    at_step:
        Deterministic trigger: fire when the scope's step counter
        equals this value (comm-op index, gate index, campaign
        iteration, or batch job index depending on ``scope``).
    probability:
        Stochastic trigger: fire on each step with this probability
        (seeded draw; mutually composable with ``at_step``).
    scope:
        Where the spec is evaluated: ``comm`` (default), ``gate``,
        ``campaign``, or ``batch``.
    bit_flips:
        Corruption only — number of bits flipped in the payload.
    detectable:
        Corruption only — if True (default) the receiver's checksum
        catches it and the exchange raises ``TransientCommError``
        (i.e. retransmission recovers); if False the corrupted payload
        is silently delivered.
    latency_multiplier:
        Straggler only — multiplier on the op's modeled latency.
    max_triggers:
        Stop firing after this many events (default 1 for crashes —
        a dead rank only dies once — unlimited otherwise).
    """

    kind: str
    rank: Optional[int] = None
    at_step: Optional[int] = None
    probability: float = 0.0
    scope: str = "comm"
    bit_flips: int = 1
    detectable: bool = True
    latency_multiplier: float = 4.0
    max_triggers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {KINDS}")
        if self.scope not in SCOPES:
            raise ValueError(f"unknown fault scope {self.scope!r}; one of {SCOPES}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.at_step is None and self.probability == 0.0:
            raise ValueError("spec needs at_step and/or probability > 0")
        if self.max_triggers is None and self.kind == "rank_crash":
            self.max_triggers = 1


@dataclass
class FaultEvent:
    """One injected fault occurrence."""

    kind: str
    scope: str
    step: int
    rank: Optional[int]
    detail: str = ""

    def __repr__(self) -> str:
        where = f"rank={self.rank}" if self.rank is not None else "rank=*"
        tail = f" {self.detail}" if self.detail else ""
        return f"[{self.kind} {self.scope}:{self.step} {where}{tail}]"


@dataclass
class FaultLedger:
    """Append-only record of every injected event."""

    events: List[FaultEvent] = field(default_factory=list)

    def record(self, event: FaultEvent) -> None:
        self.events.append(event)

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.events)
        return sum(1 for e in self.events if e.kind == kind)

    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def summary(self) -> str:
        if not self.events:
            return "fault ledger: empty"
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.by_kind().items()))
        return f"fault ledger: {len(self.events)} events ({parts})"


class FaultInjector:
    """Evaluates :class:`FaultSpec` s at each substrate hook point.

    The injector is deterministic: specs are checked in declaration
    order, every probabilistic spec consumes exactly one RNG draw per
    step it is live, and trigger exhaustion (``max_triggers``) follows
    from the event sequence alone.  Replaying the same (specs, seed)
    therefore replays the same faults — the property the acceptance
    scenario (crash + recovery reproducibility) rests on.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        self.specs = list(specs)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.ledger = FaultLedger()
        self.crashed_ranks: set = set()
        self.comm_ops = 0
        self._trigger_counts = [0] * len(self.specs)

    # -- spec evaluation -------------------------------------------------------

    def _live(self, i: int, spec: FaultSpec) -> bool:
        return (
            spec.max_triggers is None
            or self._trigger_counts[i] < spec.max_triggers
        )

    def _fires(self, i: int, spec: FaultSpec, step: int) -> bool:
        """One deterministic trigger evaluation (consumes at most one
        RNG draw)."""
        if not self._live(i, spec):
            return False
        if spec.at_step is not None and spec.at_step == step:
            return True
        if spec.probability > 0.0:
            return bool(self.rng.random() < spec.probability)
        return False

    def _record(
        self, i: int, spec: FaultSpec, step: int, rank: Optional[int], detail: str
    ) -> FaultEvent:
        self._trigger_counts[i] += 1
        event = FaultEvent(
            kind=spec.kind, scope=spec.scope, step=step, rank=rank, detail=detail
        )
        self.ledger.record(event)
        # every injected fault also lands on the structured event bus
        # (constant-time no-op when none is installed)
        obs_events.emit(
            "fault.injected",
            kind=spec.kind,
            scope=spec.scope,
            step=step,
            rank=rank,
            detail=detail,
        )
        return event

    # -- comm-scope hooks (called by SimComm) -----------------------------------

    def next_comm_op(self) -> int:
        """Allocate the next comm-op index (each retry attempt is a new
        op — retransmissions redraw their fault dice)."""
        op = self.comm_ops
        self.comm_ops += 1
        return op

    def check_comm_faults(self, op: int, op_name: str) -> float:
        """Evaluate crash / transient / straggler specs for one comm
        op.  Returns the straggler latency multiplier (1.0 if none);
        raises :class:`RankFailure` or :class:`TransientCommError`."""
        multiplier = 1.0
        for i, spec in enumerate(self.specs):
            if spec.scope != "comm":
                continue
            if spec.kind == "rank_crash" and self._fires(i, spec, op):
                rank = spec.rank if spec.rank is not None else 0
                self._record(i, spec, op, rank, f"during {op_name}")
                self.crashed_ranks.add(rank)
                raise RankFailure(rank, op, "comm")
            if spec.kind == "transient_exchange" and self._fires(i, spec, op):
                self._record(i, spec, op, spec.rank, f"{op_name} dropped")
                raise TransientCommError(
                    f"transient fault: {op_name} (comm op {op}) dropped"
                )
            if spec.kind == "straggler" and self._fires(i, spec, op):
                self._record(
                    i, spec, op, spec.rank, f"x{spec.latency_multiplier:g} latency"
                )
                multiplier = max(multiplier, spec.latency_multiplier)
        return multiplier

    def corrupt_payloads(
        self, op: int, buffers: Sequence[Optional[np.ndarray]]
    ) -> "tuple[List[Optional[np.ndarray]], bool]":
        """Apply comm-scope corruption specs to a *copy* of the
        payloads.  Returns (possibly corrupted buffers, detectable)
        where ``detectable`` is True when at least one fired spec is
        checksum-detectable (the caller then raises and retries)."""
        fired = False
        detectable = False
        out: List[Optional[np.ndarray]] = list(buffers)
        for i, spec in enumerate(self.specs):
            if spec.scope != "comm" or spec.kind != "corruption":
                continue
            if not self._fires(i, spec, op):
                continue
            targets = (
                [spec.rank]
                if spec.rank is not None
                else [k for k, b in enumerate(out) if b is not None]
            )
            for rank in targets:
                if rank is None or rank >= len(out) or out[rank] is None:
                    continue
                buf = np.array(out[rank], copy=True)
                raw = buf.view(np.uint8)
                if raw.size:
                    for _ in range(max(1, spec.bit_flips)):
                        pos = int(self.rng.integers(raw.size))
                        bit = int(self.rng.integers(8))
                        raw[pos] ^= np.uint8(1 << bit)
                out[rank] = buf
                self._record(
                    i,
                    spec,
                    op,
                    rank,
                    f"{spec.bit_flips} bit(s) flipped"
                    + ("" if spec.detectable else " [undetected]"),
                )
                fired = True
                detectable = detectable or spec.detectable
        return (out, detectable) if fired else (list(buffers), False)

    # -- gate-scope hook (called by DistributedStatevector) -----------------------

    def check_gate_faults(self, gate_index: int) -> None:
        """Crash specs evaluated per applied gate."""
        for i, spec in enumerate(self.specs):
            if spec.scope != "gate" or spec.kind != "rank_crash":
                continue
            if self._fires(i, spec, gate_index):
                rank = spec.rank if spec.rank is not None else 0
                self._record(i, spec, gate_index, rank, "during gate")
                self.crashed_ranks.add(rank)
                raise RankFailure(rank, gate_index, "gate")

    # -- campaign-scope hook (called by CampaignRunner) ----------------------------

    def check_campaign_faults(self, iteration: int) -> None:
        """Crash specs evaluated per campaign iteration / evaluation."""
        for i, spec in enumerate(self.specs):
            if spec.scope != "campaign" or spec.kind != "rank_crash":
                continue
            if self._fires(i, spec, iteration):
                rank = spec.rank if spec.rank is not None else 0
                self._record(i, spec, iteration, rank, "mid-iteration")
                self.crashed_ranks.add(rank)
                raise RankFailure(rank, iteration, "campaign")

    # -- batch-scope hook (called by EnsembleExecutor) -----------------------------

    def check_batch_faults(self, job_index: int, rank: int) -> Optional[int]:
        """Evaluate batch-scope crash specs as job ``job_index`` runs
        on ``rank``.  Returns the rank that died (to be degraded out of
        the schedule) or ``None``; never raises — batch recovery is
        rescheduling, not rollback."""
        for i, spec in enumerate(self.specs):
            if spec.scope != "batch" or spec.kind != "rank_crash":
                continue
            if spec.rank is not None and spec.rank != rank:
                continue
            if self._fires(i, spec, job_index):
                self._record(i, spec, job_index, rank, "job host died")
                self.crashed_ranks.add(rank)
                return rank
        return None
