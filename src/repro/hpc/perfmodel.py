"""Analytic performance model for distributed statevector simulation.

Statevector gate kernels are memory-bandwidth bound: one gate streams
the full slice (read + write), so

    t_gate_local = 2 * slice_bytes / mem_bandwidth + gate_overhead.

A gate on a global qubit additionally exchanges half the slice with a
partner rank:

    t_exchange = net_latency + (slice_bytes / 2) / net_bandwidth.

From these two costs, published machine parameters (``cluster``), and
the gate/exchange counts of an actual circuit (or an analytic circuit
profile), the model produces simulated wall-clock times whose
*scaling shape* — strong-scaling knees where exchange cost overtakes
kernel cost, weak-scaling plateaus, machine-to-machine ratios — is
what the paper's "scalable on leading HPC systems" claim rests on.
The tests cross-check the model's exchange counts against the real
``DistributedStatevector`` execution engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.hpc.cluster import Machine, get_machine
from repro.ir.circuit import Circuit

__all__ = [
    "SimulatedTime",
    "SimulatedClock",
    "estimate_circuit_time",
    "count_exchanges",
    "strong_scaling_curve",
    "weak_scaling_curve",
    "max_qubits_for_memory",
    "checkpoint_write_time",
    "optimal_checkpoint_period",
    "campaign_runtime_with_failures",
]


@dataclass
class SimulatedClock:
    """Monotone simulated wall-clock (seconds).

    The substrate never sleeps: communication costs, retry backoff
    (``repro.utils.retry.RetryPolicy``), straggler penalties, and
    checkpoint writes all *advance* a shared clock instead, so
    recovery latency shows up in the same simulated-seconds currency
    as the scaling model's kernel and exchange times.
    """

    now: float = 0.0

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self.now += seconds

    def reset(self) -> None:
        self.now = 0.0


@dataclass
class SimulatedTime:
    """Decomposed simulated execution time (seconds)."""

    compute: float
    communication: float
    num_local_gate_applications: int
    num_exchanges: int
    num_ranks: int

    @property
    def total(self) -> float:
        return self.compute + self.communication

    @property
    def communication_fraction(self) -> float:
        return self.communication / self.total if self.total > 0 else 0.0


def count_exchanges(circuit: Circuit, num_qubits: int, num_ranks: int) -> int:
    """Exchanges the relocation strategy performs for this circuit.

    Replays the layout bookkeeping of ``DistributedStatevector``
    (without touching amplitudes): a gate on a qubit whose current
    physical position is global costs one exchange per such qubit.
    """
    r = int(math.log2(num_ranks))
    local = num_qubits - r
    layout = list(range(num_qubits))
    cursor = 0
    exchanges = 0
    for gate in circuit.gates:
        involved = set(gate.qubits)
        for q in gate.qubits:
            if layout[q] >= local:
                inv = {p: ql for ql, p in enumerate(layout)}
                victim = None
                for _ in range(local):
                    cand = cursor % local
                    cursor += 1
                    if inv[cand] not in involved:
                        victim = cand
                        break
                assert victim is not None
                ql = inv[victim]  # logical qubit currently in the victim slot
                layout[ql], layout[q] = layout[q], victim
                exchanges += 1
    return exchanges


def estimate_circuit_time(
    circuit_or_gates,
    num_qubits: int,
    num_ranks: int,
    machine: "Machine | str" = "perlmutter",
    exchanges: Optional[int] = None,
) -> SimulatedTime:
    """Simulated wall-clock for one circuit execution.

    ``circuit_or_gates`` is either a :class:`Circuit` (exchanges are
    counted by replaying the layout) or an integer gate count (then
    ``exchanges`` must be given or is estimated as gates * r / n —
    the fraction of gate targets that land on global qubits under a
    uniform-target model).
    """
    if isinstance(machine, str):
        machine = get_machine(machine)
    r = int(math.log2(num_ranks))
    if num_ranks != 1 << r:
        raise ValueError("num_ranks must be a power of two")
    if isinstance(circuit_or_gates, Circuit):
        num_gates = len(circuit_or_gates)
        if exchanges is None:
            exchanges = (
                count_exchanges(circuit_or_gates, num_qubits, num_ranks)
                if num_ranks > 1
                else 0
            )
    else:
        num_gates = int(circuit_or_gates)
        if exchanges is None:
            exchanges = int(num_gates * r / max(num_qubits, 1)) if r else 0

    slice_bytes = (1 << (num_qubits - r)) * 16
    t_gate = 2.0 * slice_bytes / machine.mem_bandwidth + machine.gate_overhead
    t_exch = machine.net_latency + (slice_bytes / 2.0) / machine.net_bandwidth
    return SimulatedTime(
        compute=num_gates * t_gate,
        communication=exchanges * t_exch,
        num_local_gate_applications=num_gates,
        num_exchanges=exchanges,
        num_ranks=num_ranks,
    )


def max_qubits_for_memory(machine: "Machine | str", num_ranks: int = 1) -> int:
    """Largest register a machine partition can hold (Fig. 1c logic)."""
    if isinstance(machine, str):
        machine = get_machine(machine)
    total = machine.device_memory * num_ranks
    n = 0
    while (1 << (n + 1)) * 16 <= total:
        n += 1
    return n


def checkpoint_write_time(
    num_qubits: int,
    num_ranks: int,
    machine: "Machine | str" = "perlmutter",
    fs_bandwidth: float = 5e9,
) -> float:
    """Seconds to write one distributed checkpoint.

    Each rank streams its slice to the parallel filesystem
    concurrently (``fs_bandwidth`` is the sustained per-writer
    bandwidth), so the cost is one slice, not the full state — the
    reason per-rank sharded checkpoints are viable at all.
    """
    if isinstance(machine, str):
        machine = get_machine(machine)
    r = int(math.log2(num_ranks))
    if num_ranks != 1 << r:
        raise ValueError("num_ranks must be a power of two")
    slice_bytes = (1 << (num_qubits - r)) * 16
    return slice_bytes / fs_bandwidth + machine.net_latency


def optimal_checkpoint_period(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Young's first-order optimum tau* = sqrt(2 * C * MTBF).

    Checkpointing more often than this wastes time writing state;
    less often wastes time recomputing lost work after failures.
    """
    if checkpoint_cost_s < 0 or mtbf_s <= 0:
        raise ValueError("need checkpoint_cost_s >= 0 and mtbf_s > 0")
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


def campaign_runtime_with_failures(
    work_s: float,
    period_s: float,
    checkpoint_cost_s: float,
    mtbf_s: float,
    restart_cost_s: float = 0.0,
) -> float:
    """Expected campaign wall-clock under random failures (Daly's
    first-order model).

    Useful work ``work_s`` is cut into segments of ``period_s``, each
    followed by a checkpoint of cost ``checkpoint_cost_s``.  Failures
    arrive Poisson with mean interval ``mtbf_s``; each one costs the
    restart plus on average half a period of lost work.  Solving

        T = base + (T / MTBF) * (restart + period/2 + checkpoint/2)

    for T gives the closed form returned here (infinite when the
    failure rate is too high for the chosen period to make progress).
    """
    if work_s <= 0:
        return 0.0
    if period_s <= 0 or mtbf_s <= 0:
        raise ValueError("need period_s > 0 and mtbf_s > 0")
    base = work_s * (1.0 + checkpoint_cost_s / period_s)
    loss_per_failure = restart_cost_s + 0.5 * (period_s + checkpoint_cost_s)
    denom = 1.0 - loss_per_failure / mtbf_s
    if denom <= 0:
        return math.inf
    return base / denom


def strong_scaling_curve(
    num_qubits: int,
    num_gates: int,
    ranks: Sequence[int],
    machine: "Machine | str" = "perlmutter",
) -> Dict[int, SimulatedTime]:
    """Fixed problem, growing partition: the strong-scaling sweep."""
    return {
        R: estimate_circuit_time(num_gates, num_qubits, R, machine) for R in ranks
    }


def weak_scaling_curve(
    base_qubits: int,
    num_gates: int,
    ranks: Sequence[int],
    machine: "Machine | str" = "perlmutter",
) -> Dict[int, SimulatedTime]:
    """Problem grows with the partition (one extra qubit per rank
    doubling): the weak-scaling sweep — the regime that motivates
    distributed simulation in the first place (each rank's slice stays
    constant while total capacity doubles)."""
    out = {}
    for R in ranks:
        n = base_qubits + int(math.log2(R))
        out[R] = estimate_circuit_time(num_gates, n, R, machine)
    return out
