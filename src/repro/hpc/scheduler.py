"""Batch scheduling of independent circuits across ranks (paper §6.2).

The paper lists batch execution — distributing independent circuits
(Pauli-term evaluations, parameter-sweep VQE instances) over GPUs — as
future work.  We implement it: ``BatchScheduler`` assigns jobs to
ranks with the Longest-Processing-Time (LPT) greedy rule (4/3-optimal
for makespan) using per-job cost estimates from the performance model,
and reports the resulting makespan, per-rank utilization, and speedup
over serial execution.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.hpc.cluster import Machine, get_machine
from repro.hpc.perfmodel import estimate_circuit_time
from repro.ir.circuit import Circuit

__all__ = ["Job", "Schedule", "BatchScheduler"]


@dataclass
class Job:
    """One independent simulation job."""

    name: str
    num_qubits: int
    num_gates: int

    @classmethod
    def from_circuit(cls, name: str, circuit: Circuit) -> "Job":
        return cls(name=name, num_qubits=circuit.num_qubits, num_gates=len(circuit))


@dataclass
class Schedule:
    """Assignment of jobs to ranks with simulated timing."""

    assignments: Dict[int, List[Job]]
    rank_times: Dict[int, float]
    makespan: float
    serial_time: float

    @property
    def speedup(self) -> float:
        return self.serial_time / self.makespan if self.makespan > 0 else 1.0

    @property
    def utilization(self) -> float:
        """Mean busy fraction across ranks."""
        if not self.rank_times or self.makespan == 0:
            return 1.0
        return sum(self.rank_times.values()) / (
            len(self.rank_times) * self.makespan
        )


class BatchScheduler:
    """LPT greedy scheduler over a homogeneous rank pool.

    Each job runs single-rank (each circuit fits one device; that is
    the batching regime of §6.2 — many small circuits, not one giant
    partitioned state).
    """

    def __init__(self, num_ranks: int, machine: Union[Machine, str] = "perlmutter"):
        if num_ranks < 1:
            raise ValueError("need at least one rank")
        self.num_ranks = num_ranks
        self.machine = get_machine(machine) if isinstance(machine, str) else machine

    def job_cost(self, job: Job) -> float:
        return estimate_circuit_time(
            job.num_gates, job.num_qubits, 1, self.machine
        ).total

    def schedule(self, jobs: Sequence[Job]) -> Schedule:
        costs = [(self.job_cost(j), j) for j in jobs]
        serial = sum(c for c, _ in costs)
        # LPT: longest first onto the least-loaded rank (min-heap).
        heap: List[Tuple[float, int]] = [(0.0, k) for k in range(self.num_ranks)]
        heapq.heapify(heap)
        assignments: Dict[int, List[Job]] = {k: [] for k in range(self.num_ranks)}
        rank_times: Dict[int, float] = {k: 0.0 for k in range(self.num_ranks)}
        for cost, job in sorted(costs, key=lambda cj: -cj[0]):
            load, k = heapq.heappop(heap)
            assignments[k].append(job)
            load += cost
            rank_times[k] = load
            heapq.heappush(heap, (load, k))
        makespan = max(rank_times.values()) if rank_times else 0.0
        return Schedule(
            assignments=assignments,
            rank_times=rank_times,
            makespan=makespan,
            serial_time=serial,
        )
