"""Batch scheduling of independent circuits across ranks (paper §6.2).

The paper lists batch execution — distributing independent circuits
(Pauli-term evaluations, parameter-sweep VQE instances) over GPUs — as
future work.  We implement it: ``BatchScheduler`` assigns jobs to
ranks with the Longest-Processing-Time (LPT) greedy rule (4/3-optimal
for makespan) using per-job cost estimates from the performance model,
and reports the resulting makespan, per-rank utilization, and speedup
over serial execution.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.obs.perf import RANK_SCHED_BUSY_COUNTER
from repro.hpc.cluster import Machine, get_machine
from repro.hpc.perfmodel import estimate_circuit_time
from repro.ir.circuit import Circuit

__all__ = ["Job", "Schedule", "BatchScheduler"]


@dataclass
class Job:
    """One independent simulation job.

    ``mem_bytes`` is the capacity model's predicted peak resident
    bytes; 0 (the default) means unknown, and byte-aware placement
    treats the job as free.
    """

    name: str
    num_qubits: int
    num_gates: int
    mem_bytes: int = 0

    @classmethod
    def from_circuit(cls, name: str, circuit: Circuit) -> "Job":
        return cls(name=name, num_qubits=circuit.num_qubits, num_gates=len(circuit))


@dataclass
class Schedule:
    """Assignment of jobs to ranks with simulated timing.

    ``failed_ranks`` lists ranks that died and were degraded out; the
    makespan/speedup then describe the surviving ensemble (including
    any work redone on survivors).
    """

    assignments: Dict[int, List[Job]]
    rank_times: Dict[int, float]
    makespan: float
    serial_time: float
    failed_ranks: List[int] = field(default_factory=list)
    rank_bytes: Dict[int, int] = field(default_factory=dict)

    @property
    def num_survivors(self) -> int:
        return len(self.rank_times)

    @property
    def speedup(self) -> float:
        return self.serial_time / self.makespan if self.makespan > 0 else 1.0

    @property
    def utilization(self) -> float:
        """Mean busy fraction across ranks."""
        if not self.rank_times or self.makespan == 0:
            return 1.0
        return sum(self.rank_times.values()) / (
            len(self.rank_times) * self.makespan
        )


class BatchScheduler:
    """LPT greedy scheduler over a homogeneous rank pool.

    Each job runs single-rank (each circuit fits one device; that is
    the batching regime of §6.2 — many small circuits, not one giant
    partitioned state).
    """

    def __init__(self, num_ranks: int, machine: Union[Machine, str] = "perlmutter"):
        if num_ranks < 1:
            raise ValueError("need at least one rank")
        self.num_ranks = num_ranks
        self.machine = get_machine(machine) if isinstance(machine, str) else machine

    def job_cost(self, job: Job) -> float:
        return estimate_circuit_time(
            job.num_gates, job.num_qubits, 1, self.machine
        ).total

    def schedule(
        self,
        jobs: Sequence[Job],
        available_ranks: Optional[Sequence[int]] = None,
        rank_capacity_bytes: Optional[int] = None,
    ) -> Schedule:
        """LPT-schedule ``jobs`` over ``available_ranks`` (all ranks by
        default — pass the survivors to plan around known-dead ranks).

        With ``rank_capacity_bytes`` the fill is (time, bytes)-aware:
        byte load breaks time ties, and a rank whose accumulated
        predicted bytes would exceed the capacity is skipped while any
        other rank has headroom (overcommitting the least-loaded rank
        only when none does — jobs run one at a time, so overcommit
        costs queueing, not correctness)."""
        ranks = (
            list(range(self.num_ranks))
            if available_ranks is None
            else sorted(set(available_ranks))
        )
        if not ranks:
            raise ValueError("no surviving ranks to schedule on")
        if any(k < 0 or k >= self.num_ranks for k in ranks):
            raise ValueError("available_ranks outside the rank pool")
        with obs.span(
            "sched.schedule", jobs=len(jobs), ranks=len(ranks)
        ) as sp:
            costs = [(self.job_cost(j), j) for j in jobs]
            serial = sum(c for c, _ in costs)
            assignments: Dict[int, List[Job]] = {k: [] for k in ranks}
            rank_times: Dict[int, float] = {k: 0.0 for k in ranks}
            rank_bytes: Dict[int, int] = {k: 0 for k in ranks}
            self._lpt_fill(
                costs, assignments, rank_times, rank_bytes, rank_capacity_bytes
            )
        makespan = max(rank_times.values()) if rank_times else 0.0
        sp.set_attribute("makespan_s", makespan)
        if obs.enabled():
            obs.inc(
                "repro_sched_jobs_placed_total",
                len(jobs),
                help="Jobs placed by the LPT batch scheduler",
            )
            self._emit_rank_metrics(rank_times)
        failed = [
            k for k in range(self.num_ranks) if k not in set(ranks)
        ]
        return Schedule(
            assignments=assignments,
            rank_times=rank_times,
            makespan=makespan,
            serial_time=serial,
            failed_ranks=failed,
            rank_bytes=rank_bytes,
        )

    def schedule_groups(
        self,
        groups: Sequence[Tuple[Sequence[Job], int]],
        available_ranks: Optional[Sequence[int]] = None,
        rank_capacity_bytes: Optional[int] = None,
    ) -> Schedule:
        """LPT over *batch groups* instead of individual jobs.

        ``groups`` is a sequence of ``(jobs, group_bytes)`` pairs; all
        jobs of one group land on ONE rank (they must, to share a
        batched (B, 2^n) amplitude block), and the group is priced as a
        whole: time = sum of member costs (the batch still executes
        every row's gates), bytes = ``group_bytes`` (the capacity
        model's batched estimate, far below the sum of per-job
        estimates because plan/observable/Hamiltonian are shared).

        Implemented by wrapping each group in a meta-:class:`Job` fed
        through the ordinary (time, bytes)-aware LPT fill, then
        expanding the placed meta-jobs back into their members.
        """
        metas: List[Job] = []
        members: Dict[str, List[Job]] = {}
        for i, (jobs, group_bytes) in enumerate(groups):
            jobs = list(jobs)
            if not jobs:
                continue
            meta = Job(
                name=f"group:{i}",
                num_qubits=max(j.num_qubits for j in jobs),
                num_gates=sum(j.num_gates for j in jobs),
                mem_bytes=max(0, int(group_bytes)),
            )
            metas.append(meta)
            members[meta.name] = jobs
        placed = self.schedule(
            metas,
            available_ranks=available_ranks,
            rank_capacity_bytes=rank_capacity_bytes,
        )
        assignments = {
            k: [job for meta in metas_on_rank for job in members[meta.name]]
            for k, metas_on_rank in placed.assignments.items()
        }
        return Schedule(
            assignments=assignments,
            rank_times=placed.rank_times,
            makespan=placed.makespan,
            serial_time=placed.serial_time,
            failed_ranks=placed.failed_ranks,
            rank_bytes=placed.rank_bytes,
        )

    @staticmethod
    def _emit_rank_metrics(
        rank_times: Dict[int, float],
        previous: Optional[Dict[int, float]] = None,
    ) -> None:
        """Per-rank simulated busy seconds, tagged with the rank id.
        ``previous`` subtracts loads already emitted (rescheduling adds
        on top of an existing schedule's counters)."""
        for k, busy in rank_times.items():
            delta = busy - (previous or {}).get(k, 0.0)
            if delta > 0.0:
                obs.inc(
                    RANK_SCHED_BUSY_COUNTER,
                    delta,
                    help="Simulated seconds of scheduled work per rank",
                    labels={"rank": str(k)},
                )

    @staticmethod
    def _lpt_fill(
        costs: Sequence[Tuple[float, Job]],
        assignments: Dict[int, List[Job]],
        rank_times: Dict[int, float],
        rank_bytes: Optional[Dict[int, int]] = None,
        rank_capacity_bytes: Optional[int] = None,
    ) -> None:
        """(time, bytes)-aware LPT: longest job first onto the
        least-loaded rank (min-heap over (time, bytes, rank)), starting
        from the loads already in ``rank_times``/``rank_bytes``.  With
        a byte capacity, ranks past it are skipped while another has
        headroom; when none does, the least-loaded rank overcommits."""
        if rank_bytes is None:
            rank_bytes = {k: 0 for k in assignments}
        heap: List[Tuple[float, int, int]] = [
            (rank_times[k], rank_bytes.get(k, 0), k) for k in sorted(assignments)
        ]
        heapq.heapify(heap)
        for cost, job in sorted(costs, key=lambda cj: -cj[0]):
            need = max(0, job.mem_bytes)
            skipped: List[Tuple[float, int, int]] = []
            chosen: Optional[Tuple[float, int, int]] = None
            while heap:
                load, nbytes, k = heapq.heappop(heap)
                if (
                    rank_capacity_bytes is None
                    or need == 0
                    or nbytes + need <= rank_capacity_bytes
                ):
                    chosen = (load, nbytes, k)
                    break
                skipped.append((load, nbytes, k))
            if chosen is None:
                chosen = skipped.pop(0)  # pops in heap order: least loaded
            for entry in skipped:
                heapq.heappush(heap, entry)
            load, nbytes, k = chosen
            assignments[k].append(job)
            load += cost
            nbytes += need
            rank_times[k] = load
            rank_bytes[k] = nbytes
            heapq.heappush(heap, (load, nbytes, k))

    def reschedule_after_failure(
        self,
        schedule: Schedule,
        dead_rank: int,
        completed: Sequence[str] = (),
    ) -> Schedule:
        """Degrade a schedule after ``dead_rank`` fails mid-batch.

        Jobs already ``completed`` (by name) on the dead rank keep
        their cost sunk into the makespan baseline; its unfinished jobs
        are re-LPT'd onto the survivors *on top of* their existing
        loads.  The returned schedule's speedup therefore reflects
        both the lost rank and the redone work.
        """
        if dead_rank not in schedule.assignments:
            raise ValueError(f"rank {dead_rank} is not part of this schedule")
        done = set(completed)
        orphans = [j for j in schedule.assignments[dead_rank] if j.name not in done]
        assignments = {
            k: list(js)
            for k, js in schedule.assignments.items()
            if k != dead_rank
        }
        rank_times = {
            k: t for k, t in schedule.rank_times.items() if k != dead_rank
        }
        rank_bytes = {
            k: b for k, b in schedule.rank_bytes.items() if k != dead_rank
        }
        if not assignments:
            raise ValueError("no surviving ranks to reschedule on")
        previous = dict(rank_times)
        with obs.span(
            "sched.reschedule_after_failure",
            dead_rank=dead_rank,
            orphans=len(orphans),
        ):
            self._lpt_fill(
                [(self.job_cost(j), j) for j in orphans],
                assignments,
                rank_times,
                rank_bytes,
            )
        if obs.enabled():
            obs.inc(
                "repro_sched_jobs_rescheduled_total",
                len(orphans),
                help="Orphaned jobs re-placed after a rank failure",
            )
            self._emit_rank_metrics(rank_times, previous)
        makespan = max(rank_times.values()) if rank_times else 0.0
        # work finished on the dead rank before it died still bounds the
        # makespan from below
        sunk = sum(
            self.job_cost(j)
            for j in schedule.assignments[dead_rank]
            if j.name in done
        )
        makespan = max(makespan, sunk)
        return Schedule(
            assignments=assignments,
            rank_times=rank_times,
            makespan=makespan,
            serial_time=schedule.serial_time,
            failed_ranks=sorted(set(schedule.failed_ranks) | {dead_rank}),
            rank_bytes=rank_bytes,
        )
