"""Machine descriptions for the leading HPC systems of the paper.

Parameter sets use published per-device figures for the machines the
paper targets (NERSC Perlmutter, OLCF Summit) plus a Frontier-class
and a plain CPU-node preset for comparison.  These feed the analytic
performance model (``repro.hpc.perfmodel``); absolute times are
estimates, but the *ratios* that drive scaling shape — memory
bandwidth vs interconnect bandwidth vs latency — are the real ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Machine", "MACHINES", "get_machine"]

GiB = 1 << 30


@dataclass(frozen=True)
class Machine:
    """One device + interconnect description.

    Attributes
    ----------
    mem_bandwidth:
        Device memory bandwidth, bytes/s (HBM for GPUs).
    device_memory:
        Usable device memory, bytes — the Fig. 1c / §4.1.4 capacity
        limit governing when states spill to host.
    net_bandwidth:
        Per-endpoint injection bandwidth, bytes/s.
    net_latency:
        Per-message latency, seconds.
    gate_overhead:
        Fixed per-gate launch overhead, seconds (kernel launch on
        GPUs, loop overhead on CPUs).
    """

    name: str
    mem_bandwidth: float
    device_memory: int
    net_bandwidth: float
    net_latency: float
    gate_overhead: float


MACHINES: Dict[str, Machine] = {
    # NERSC Perlmutter: A100-40GB, Slingshot-11 (4x 25 GB/s NICs/node,
    # ~1 per GPU).
    "perlmutter": Machine(
        name="perlmutter",
        mem_bandwidth=1.555e12,
        device_memory=40 * GiB,
        net_bandwidth=25e9,
        net_latency=2.0e-6,
        gate_overhead=4.0e-6,
    ),
    # OLCF Summit: V100-16GB, dual-rail EDR InfiniBand (23 GB/s/node,
    # ~3.8 GB/s per GPU when all six inject).
    "summit": Machine(
        name="summit",
        mem_bandwidth=0.9e12,
        device_memory=16 * GiB,
        net_bandwidth=4e9,
        net_latency=1.5e-6,
        gate_overhead=5.0e-6,
    ),
    # OLCF Frontier-class: MI250X GCD, Slingshot-11.
    "frontier": Machine(
        name="frontier",
        mem_bandwidth=1.6e12,
        device_memory=64 * GiB,
        net_bandwidth=25e9,
        net_latency=2.0e-6,
        gate_overhead=4.0e-6,
    ),
    # A dual-socket CPU node (DDR4).
    "cpu-node": Machine(
        name="cpu-node",
        mem_bandwidth=2.0e11,
        device_memory=256 * GiB,
        net_bandwidth=12.5e9,
        net_latency=1.2e-6,
        gate_overhead=1.0e-7,
    ),
}


def get_machine(name: str) -> Machine:
    try:
        return MACHINES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; available: {sorted(MACHINES)}"
        ) from None
