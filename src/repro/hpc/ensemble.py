"""Ensemble execution of VQE evaluation workloads (paper §6.2, EQC [15]).

EQC-style ensembling distributes the independent expectation-value
evaluations a single VQE step generates — the 2m parameter-shift
energies of a gradient, the members of a line search, the Pauli-group
circuits of one energy — across an ensemble of devices.  Here the
"devices" are simulated ranks: each evaluation genuinely executes (on
the single-device statevector simulator) while the LPT scheduler and
machine model track where it would run and how long the ensemble would
take, so both the numerics and the projected speedup are real outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.hpc.cluster import Machine, get_machine
from repro.hpc.faults import FaultInjector
from repro.hpc.scheduler import BatchScheduler, Job, Schedule
from repro.ir.circuit import Circuit
from repro.ir.pauli import PauliSum
from repro.sim.expectation import expectation_direct
from repro.sim.statevector import StatevectorSimulator

__all__ = ["EnsembleResult", "EnsembleExecutor"]


@dataclass
class EnsembleResult:
    """Values plus the simulated ensemble timing."""

    values: np.ndarray
    schedule: Schedule

    @property
    def speedup(self) -> float:
        return self.schedule.speedup

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def failed_ranks(self) -> List[int]:
        return self.schedule.failed_ranks


class EnsembleExecutor:
    """Runs batches of (bound circuit, observable) evaluations over a
    simulated device ensemble."""

    def __init__(
        self,
        num_devices: int,
        machine: Union[Machine, str] = "perlmutter",
        fault_injector: Optional[FaultInjector] = None,
    ):
        self.num_devices = num_devices
        self.machine = get_machine(machine) if isinstance(machine, str) else machine
        self.scheduler = BatchScheduler(num_devices, self.machine)
        self.fault_injector = fault_injector

    def evaluate(
        self,
        circuits: Sequence[Circuit],
        observable: PauliSum,
    ) -> EnsembleResult:
        """Expectation of ``observable`` after each circuit.

        All circuits must be bound and share the observable's width.
        """
        jobs = [
            Job.from_circuit(f"eval_{k}", c) for k, c in enumerate(circuits)
        ]
        with obs.span(
            "ensemble.evaluate", circuits=len(circuits), devices=self.num_devices
        ) as sp:
            schedule = self._schedule_with_faults(jobs)
            values = np.empty(len(circuits))
            for k, circuit in enumerate(circuits):
                sim = StatevectorSimulator(circuit.num_qubits)
                state = sim.run(circuit)
                values[k] = expectation_direct(state, observable)
        if obs.enabled():
            sp.set_attribute("makespan_s", schedule.makespan)
            sp.set_attribute("speedup", schedule.speedup)
            sp.set_attribute(
                "rank_busy_sim_s",
                {str(k): t for k, t in sorted(schedule.rank_times.items())},
            )
            obs.inc(
                "repro_ensemble_evaluations_total",
                len(circuits),
                help="Expectation evaluations dispatched over the ensemble",
            )
        return EnsembleResult(values=values, schedule=schedule)

    def _schedule_with_faults(self, jobs: Sequence[Job]) -> Schedule:
        """Plan the batch, then replay it against the fault injector:
        a rank that dies mid-batch loses its unfinished jobs, which are
        re-LPT'd onto the survivors (graceful degradation) — the
        returned schedule's makespan/speedup describe the degraded
        ensemble.  The numerics are unaffected: every evaluation still
        runs (on a survivor)."""
        injector = self.fault_injector
        if injector is None:
            return self.scheduler.schedule(jobs)
        alive = [
            k for k in range(self.num_devices) if k not in injector.crashed_ranks
        ]
        schedule = self.scheduler.schedule(jobs, available_ranks=alive)
        completed: List[str] = []
        for idx, job in enumerate(jobs):
            rank = next(
                (
                    k
                    for k, js in schedule.assignments.items()
                    if any(j.name == job.name for j in js)
                ),
                None,
            )
            if rank is None:
                continue
            dead = injector.check_batch_faults(idx, rank)
            if dead is not None and dead in schedule.assignments:
                if len(schedule.assignments) == 1:
                    raise RuntimeError(
                        "last surviving ensemble rank crashed; batch cannot "
                        "be degraded further"
                    )
                schedule = self.scheduler.reschedule_after_failure(
                    schedule, dead, completed
                )
            completed.append(job.name)
        return schedule

    def parameter_shift_gradient(
        self,
        circuit: Circuit,
        observable: PauliSum,
        params: np.ndarray,
    ) -> "tuple[np.ndarray, EnsembleResult]":
        """EQC-style distributed gradient: the 2m shifted evaluations
        are scheduled over the ensemble.  Returns (gradient, result)."""
        import math as _math

        from repro.opt.parameter_shift import (
            _parameter_occurrences,
            supports_parameter_shift,
        )

        if not supports_parameter_shift(circuit):
            raise ValueError("circuit does not satisfy the shift rule")
        names = circuit.parameters
        params = np.asarray(params, dtype=float)
        occ = _parameter_occurrences(circuit)
        values = dict(zip(names, params))
        shifted: List[Circuit] = []
        coeffs = np.zeros(len(names))
        for k, name in enumerate(names):
            (pref,) = occ[name]
            coeffs[k] = pref.coeff
            shift = _math.pi / (2.0 * pref.coeff) if pref.coeff else 0.0
            up = dict(values)
            up[name] = values[name] + shift
            down = dict(values)
            down[name] = values[name] - shift
            shifted.append(circuit.bind(up))
            shifted.append(circuit.bind(down))
        result = self.evaluate(shifted, observable)
        e = result.values
        grad = 0.5 * (e[0::2] - e[1::2]) * coeffs
        grad[coeffs == 0] = 0.0
        return grad, result
