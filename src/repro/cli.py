"""Command-line interface: ``python -m repro <command>``.

The commands cover the workflows the paper demonstrates:

* ``vqe``   — the Fig. 2 pipeline on a named molecule (optionally with
  frozen-core downfolding),
* ``adapt`` — the Fig. 5 ADAPT-VQE experiment,
* ``qpe``   — phase estimation on the same Hamiltonians,
* ``counts`` — the Fig. 1/3 resource-counting sweeps,
* ``faults`` — the fault-injection/recovery demo: a distributed run
  surviving transient exchange faults via retries, a checkpointed
  ADAPT campaign surviving an injected rank crash, and a batch
  schedule degrading around a dead rank,
* ``report`` — pretty-print a run report saved with ``--report-out``,
* ``analyze`` — the performance observatory: per-rank timelines, the
  communication matrix, load imbalance, and the critical path, read
  from a saved run report or Chrome trace,
* ``bench-diff`` — compare two ``BENCH_*.json`` files written by
  ``benchmarks/run_suite.py`` and exit non-zero on regressions,
* ``serve`` / ``submit`` / ``status`` — the crash-safe multi-tenant
  campaign server (``repro.serve``): spool submissions into a server's
  inbox, run the server (kill it, restart it, it resumes), inspect
  job states read-only.

Every run command accepts the observability flags:

* ``--profile``      — enable tracing/metrics and print a run report,
* ``--trace-out F``  — write a Chrome trace-event JSON (Perfetto),
* ``--metrics-out F``— write metrics (Prometheus text, or JSONL when
  the filename ends in ``.jsonl``),
* ``--report-out F`` — write the aggregated run report as JSON,

and ``vqe`` / ``adapt`` / ``counts`` / ``faults`` take ``--json`` to
emit machine-readable results on stdout instead of aligned text.

Everything else prints plain aligned text; exit code 0 means the run
completed and (where an exact reference exists) matched it to the
requested tolerance.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro import obs
from repro.chem.molecule import Molecule, h2, h2o, h4_chain, lih

_MOLECULES = {"h2": h2, "h2o": h2o, "h4": h4_chain, "lih": lih}

# extra report context stashed by the command that just ran (ledgers,
# convergence traces, command-specific meta) and consumed by
# ``_finalize_obs``
_REPORT_EXTRAS: Dict[str, Any] = {}


def _get_molecule(name: str) -> Molecule:
    try:
        return _MOLECULES[name.lower()]()
    except KeyError:
        raise SystemExit(
            f"unknown molecule {name!r}; choose from {sorted(_MOLECULES)}"
        )


def _note_report(
    meta: Optional[Dict[str, Any]] = None,
    comm_stats: Optional[object] = None,
    cache_stats: Optional[object] = None,
    fault_ledger: Optional[object] = None,
    convergence: Optional[Dict[str, List[float]]] = None,
) -> None:
    """Record command-level context for the final run report."""
    if meta:
        _REPORT_EXTRAS.setdefault("meta", {}).update(meta)
    for key, value in (
        ("comm_stats", comm_stats),
        ("cache_stats", cache_stats),
        ("fault_ledger", fault_ledger),
        ("convergence", convergence),
    ):
        if value is not None:
            _REPORT_EXTRAS[key] = value


def _emit_json(payload: Dict[str, Any]) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_vqe(args: argparse.Namespace) -> int:
    from repro.core.workflow import run_vqe_workflow

    molecule = _get_molecule(args.molecule)
    core = [int(x) for x in args.core.split(",")] if args.core else None
    active = [int(x) for x in args.active.split(",")] if args.active else None
    t0 = time.perf_counter()
    result = run_vqe_workflow(
        molecule,
        core_orbitals=core,
        active_orbitals=active,
        downfold=not args.no_downfold,
        compute_exact=not args.no_exact,
        taper=args.taper,
    )
    dt = time.perf_counter() - t0
    _note_report(
        meta={
            "molecule": args.molecule,
            "qubits": result.num_qubits,
            "pauli_terms": result.qubit_hamiltonian.num_terms,
            "vqe_energy": result.vqe.energy,
            "tapered_qubits": (
                result.tapering.qubits_removed
                if result.tapering is not None
                else 0
            ),
        },
        convergence={"energy": list(result.vqe.history)},
    )
    failed = (
        result.exact_energy is not None and result.error_vs_exact > args.tol
    )
    if args.json:
        _emit_json(
            {
                "command": "vqe",
                "molecule": args.molecule,
                "qubits": result.num_qubits,
                "pauli_terms": result.qubit_hamiltonian.num_terms,
                "rhf_energy": result.scf.energy,
                "vqe_energy": result.vqe.energy,
                "exact_energy": result.exact_energy,
                "error_mha": (
                    result.error_vs_exact * 1000
                    if result.exact_energy is not None
                    else None
                ),
                "converged": result.vqe.converged,
                "num_function_evaluations": result.vqe.num_function_evaluations,
                "wall_time_s": dt,
                "tapering": (
                    {
                        "symmetries": len(result.tapering.symmetries),
                        "qubits_removed": result.tapering.qubits_removed,
                        "sector": result.tapering.sector,
                    }
                    if result.tapering is not None
                    else None
                ),
                "passed": not failed,
            }
        )
        return 1 if failed else 0
    print(f"molecule:        {molecule}")
    print(f"qubits:          {result.num_qubits}")
    if result.tapering is not None:
        print(f"tapering:        {result.tapering.describe()}")
    print(f"Pauli terms:     {result.qubit_hamiltonian.num_terms}")
    print(f"RHF energy:      {result.scf.energy:+.8f} Ha")
    if result.downfolding is not None:
        print(f"|sigma_ext|_1:   {result.downfolding.sigma_norm1:.5f}")
    print(f"VQE energy:      {result.vqe.energy:+.8f} Ha")
    if result.exact_energy is not None:
        print(f"exact energy:    {result.exact_energy:+.8f} Ha")
        print(f"error:           {result.error_vs_exact * 1000:.5f} mHa")
    print(f"wall time:       {dt:.1f} s")
    if failed:
        print(f"FAILED: error above tolerance {args.tol}")
        return 1
    return 0


def _cmd_adapt(args: argparse.Namespace) -> int:
    from repro.chem.downfolding import hermitian_downfold
    from repro.chem.fci import exact_ground_energy
    from repro.chem.hamiltonian import build_molecular_hamiltonian
    from repro.chem.pools import taper_pool, uccsd_pool
    from repro.chem.reference import hartree_fock_bitstring, hartree_fock_state
    from repro.chem.scf import run_rhf
    from repro.chem.tapering import taper_hamiltonian
    from repro.core.adapt import AdaptVQE, convergence_traces

    molecule = _get_molecule(args.molecule)
    scf = run_rhf(molecule)
    hamiltonian = build_molecular_hamiltonian(scf)
    if args.core:
        core = [int(x) for x in args.core.split(",")]
        active = [int(x) for x in args.active.split(",")]
        down = hermitian_downfold(hamiltonian, scf.mo_energies, core, active)
        heff = down.effective_hamiltonian.chop(1e-8)
        n_elec = down.num_electrons
    else:
        heff = hamiltonian.to_qubit()
        n_elec = hamiltonian.num_electrons
    n_qubits = heff.num_qubits
    e_ref = exact_ground_energy(heff, num_particles=n_elec, sz=0)
    pool = uccsd_pool(n_qubits, n_elec)
    reference = hartree_fock_state(n_qubits, n_elec)
    tapering = None
    if args.taper:
        import numpy as np

        hf_index = hartree_fock_bitstring(n_qubits, n_elec)
        tapering = taper_hamiltonian(heff, reference_index=hf_index)
        heff = tapering.hamiltonian
        pool = taper_pool(pool, tapering)
        n_qubits = heff.num_qubits
        reference = np.zeros(1 << n_qubits, dtype=np.complex128)
        reference[tapering.taper_index(hf_index)] = 1.0
        if not args.json:
            print(f"tapering: {tapering.describe()}")
    adapt = AdaptVQE(
        heff,
        pool,
        reference,
        max_iterations=args.max_iterations,
        reference_energy=e_ref,
        energy_tolerance=1e-3,
    )
    result = adapt.run(verbose=not args.json)
    hit = result.iterations_to_accuracy(1e-3)
    _note_report(
        meta={
            "molecule": args.molecule,
            "qubits": n_qubits,
            "adapt_energy": result.energy,
            "iterations": len(result.iterations),
        },
        convergence=convergence_traces(result.iterations),
    )
    if args.json:
        _emit_json(
            {
                "command": "adapt",
                "molecule": args.molecule,
                "qubits": n_qubits,
                "exact_energy": e_ref,
                "final_energy": result.energy,
                "converged": result.converged,
                "mha_at_iteration": hit,
                "tapering": (
                    {
                        "symmetries": len(tapering.symmetries),
                        "qubits_removed": tapering.qubits_removed,
                        "sector": tapering.sector,
                    }
                    if tapering is not None
                    else None
                ),
                "iterations": [
                    {
                        "iteration": it.iteration,
                        "selected_label": it.selected_label,
                        "max_gradient": it.max_gradient,
                        "energy": it.energy,
                        "error_vs_reference": it.error_vs_reference,
                        "num_parameters": it.num_parameters,
                    }
                    for it in result.iterations
                ],
                "passed": hit is not None,
            }
        )
        return 0 if hit is not None else 1
    print(f"exact:   {e_ref:+.8f} Ha")
    print(f"final:   {result.energy:+.8f} Ha")
    print(f"1 mHa at iteration: {hit}")
    return 0 if hit is not None else 1


def _cmd_qpe(args: argparse.Namespace) -> int:
    from repro.chem.fci import exact_ground_energy
    from repro.chem.hamiltonian import build_molecular_hamiltonian
    from repro.chem.reference import hartree_fock_state
    from repro.chem.scf import run_rhf
    from repro.core.qpe import run_qpe

    molecule = _get_molecule(args.molecule)
    scf = run_rhf(molecule)
    hq = build_molecular_hamiltonian(scf).to_qubit()
    n_so = hq.num_qubits
    n_e = scf.num_electrons
    e_exact = exact_ground_energy(hq, num_particles=n_e, sz=0)
    window = (e_exact - abs(e_exact), e_exact + abs(e_exact) * 0.5)
    res = run_qpe(
        hq,
        hartree_fock_state(n_so, n_e),
        num_ancillas=args.ancillas,
        energy_window=window,
    )
    _note_report(
        meta={"molecule": args.molecule, "qpe_energy": res.energy}
    )
    print(f"QPE energy:   {res.energy:+.8f} Ha")
    print(f"exact:        {e_exact:+.8f} Ha")
    print(f"resolution:   {res.resolution * 1000:.4f} mHa")
    print(f"success prob: {res.success_probability:.3f}")
    return 0 if abs(res.energy - e_exact) <= 2 * res.resolution else 1


def _cmd_counts(args: argparse.Namespace) -> int:
    from repro.core.counting import (
        energy_evaluation_gate_counts,
        jw_pauli_term_count,
        statevector_memory_bytes,
        tapered_qubit_count,
        tapered_statevector_memory_bytes,
        uccsd_gate_count,
    )

    rows = []
    for n in range(args.min_qubits, args.max_qubits + 1, 2):
        cost = energy_evaluation_gate_counts(n)
        rows.append(
            {
                "qubits": n,
                "uccsd_gates": uccsd_gate_count(n),
                "pauli_terms": jw_pauli_term_count(n),
                "memory_gib": statevector_memory_bytes(n) / (1 << 30),
                "tapered_qubits": tapered_qubit_count(n),
                "tapered_memory_gib": (
                    tapered_statevector_memory_bytes(n) / (1 << 30)
                ),
                "non_caching_gates": cost.non_caching_gates,
                "caching_gates": cost.caching_gates,
            }
        )
    _note_report(meta={"rows": len(rows)})
    if args.json:
        _emit_json({"command": "counts", "rows": rows})
        return 0
    print(
        f"{'qubits':>7} {'uccsd_gates':>12} {'pauli_terms':>12} "
        f"{'memory_GiB':>11} {'tapered_q':>9} {'tapered_GiB':>11} "
        f"{'non_caching':>12} {'caching':>10}"
    )
    for r in rows:
        print(
            f"{r['qubits']:>7} {r['uccsd_gates']:>12,} {r['pauli_terms']:>12,} "
            f"{r['memory_gib']:>11.4f} "
            f"{r['tapered_qubits']:>9} {r['tapered_memory_gib']:>11.4f} "
            f"{r['non_caching_gates']:>12.2e} {r['caching_gates']:>10.2e}"
        )
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import tempfile

    import numpy as np

    from repro.chem.fci import exact_ground_energy
    from repro.chem.hamiltonian import build_molecular_hamiltonian
    from repro.chem.pools import uccsd_pool
    from repro.chem.reference import hartree_fock_state
    from repro.chem.scf import run_rhf
    from repro.core.adapt import AdaptVQE
    from repro.core.campaign import CampaignRunner
    from repro.hpc.distributed import DistributedStatevector
    from repro.hpc.faults import FaultInjector, FaultSpec
    from repro.hpc.scheduler import BatchScheduler, Job
    from repro.ir.circuit import Circuit
    from repro.utils.retry import RetryPolicy

    molecule = _get_molecule(args.molecule)
    scf = run_rhf(molecule)
    hq = build_molecular_hamiltonian(scf).to_qubit()
    n = hq.num_qubits
    n_e = scf.num_electrons
    e_ref = exact_ground_energy(hq, num_particles=n_e, sz=0)

    # -- 1. distributed execution through a faulty, retried link -------------
    rng = np.random.default_rng(args.seed)
    circuit = Circuit(n)
    for _ in range(6 * n):
        q = int(rng.integers(n))
        circuit.h(q).rz(float(rng.uniform(0, 3.14)), q)
        circuit.cx(q, (q + 1) % n)
    clean = DistributedStatevector(n, args.ranks)
    clean.run(circuit)
    injector = FaultInjector(
        [
            FaultSpec("transient_exchange", probability=args.transient_rate),
            FaultSpec("corruption", probability=args.corruption_rate, bit_flips=2),
        ],
        seed=args.seed,
    )
    faulty = DistributedStatevector(
        n,
        args.ranks,
        fault_injector=injector,
        retry_policy=RetryPolicy(max_attempts=10, seed=args.seed),
    )
    faulty.run(circuit)
    stats = faulty.comm.stats
    identical = bool(np.allclose(faulty.gather(), clean.gather(), atol=1e-12))
    if not args.json:
        print(f"distributed run:  {n} qubits over {args.ranks} ranks, "
              f"{faulty.gates_applied} gates, {faulty.exchanges} exchanges")
        print(f"  transient faults: {stats.transient_errors:3d}   "
              f"corrupted msgs: {stats.corrupted_messages}")
        print(f"  retries:          {stats.retries:3d}   "
              f"simulated backoff: {stats.retry_backoff_s * 1e3:.3f} ms")
        print(f"  state identical to fault-free run: {identical}")

    # -- 2. checkpointed ADAPT campaign surviving a rank crash ---------------
    def make_adapt() -> AdaptVQE:
        return AdaptVQE(
            hq,
            uccsd_pool(n, n_e),
            hartree_fock_state(n, n_e),
            max_iterations=args.max_iterations,
            reference_energy=e_ref,
            energy_tolerance=1e-6,
        )

    baseline = make_adapt().run()
    campaign_injector = FaultInjector(
        [
            FaultSpec("rank_crash", scope="campaign", at_step=args.crash_iteration),
            FaultSpec("transient_exchange", probability=args.transient_rate),
        ],
        seed=args.seed,
    )
    with tempfile.TemporaryDirectory() as ckpt_dir:
        runner = CampaignRunner(
            ckpt_dir,
            checkpoint_period=args.checkpoint_period,
            fault_injector=campaign_injector,
            retry_policy=RetryPolicy(max_attempts=10, seed=args.seed),
            distributed_ranks=args.ranks,
        )
        campaign = runner.run_adapt(make_adapt())
    drift = abs(campaign.energy - baseline.energy)
    _note_report(
        comm_stats=runner.comm_stats,
        fault_ledger=campaign.fault_ledger,
        meta={
            "molecule": args.molecule,
            "restarts": campaign.restarts,
            "recovered_energy": campaign.energy,
        },
    )
    if not args.json:
        print(f"adapt campaign:   crash injected at iteration {args.crash_iteration}, "
              f"checkpoint period {args.checkpoint_period}")
        print(f"  restarts: {campaign.restarts}   iterations recomputed: "
              f"{campaign.iterations_recomputed}   checkpoints: "
              f"{campaign.checkpoints_written}")
        print(f"  {campaign.fault_ledger.summary()}")
        print(f"  fault-free energy: {baseline.energy:+.10f} Ha")
        print(f"  recovered energy:  {campaign.energy:+.10f} Ha  "
              f"(drift {drift:.2e} Ha)")

    # -- 3. batch schedule degrading around a dead rank ----------------------
    scheduler = BatchScheduler(args.ranks)
    jobs = [Job(f"job_{k}", n, 500 * (k % 4 + 1)) for k in range(4 * args.ranks)]
    healthy = scheduler.schedule(jobs)
    degraded = scheduler.reschedule_after_failure(
        healthy, dead_rank=0, completed=[j.name for j in healthy.assignments[0][:1]]
    )
    ok = identical and drift < 1e-8
    if args.json:
        _emit_json(
            {
                "command": "faults",
                "molecule": args.molecule,
                "distributed": {
                    "qubits": n,
                    "ranks": args.ranks,
                    "gates": faulty.gates_applied,
                    "exchanges": faulty.exchanges,
                    "transient_faults": stats.transient_errors,
                    "corrupted_messages": stats.corrupted_messages,
                    "retries": stats.retries,
                    "retry_backoff_s": stats.retry_backoff_s,
                    "state_identical": identical,
                },
                "campaign": {
                    "crash_iteration": args.crash_iteration,
                    "checkpoint_period": args.checkpoint_period,
                    "restarts": campaign.restarts,
                    "iterations_recomputed": campaign.iterations_recomputed,
                    "checkpoints_written": campaign.checkpoints_written,
                    "fault_free_energy": baseline.energy,
                    "recovered_energy": campaign.energy,
                    "drift_ha": drift,
                },
                "schedule": {
                    "jobs": len(jobs),
                    "ranks": args.ranks,
                    "healthy_makespan_s": healthy.makespan,
                    "healthy_speedup": healthy.speedup,
                    "degraded_makespan_s": degraded.makespan,
                    "degraded_speedup": degraded.speedup,
                    "survivors": degraded.num_survivors,
                },
                "passed": ok,
            }
        )
        return 0 if ok else 1
    print(f"batch schedule:   {len(jobs)} jobs on {args.ranks} ranks, rank 0 dies")
    print(f"  healthy : makespan {healthy.makespan:.4f} s  "
          f"speedup {healthy.speedup:.2f}x")
    print(f"  degraded: makespan {degraded.makespan:.4f} s  "
          f"speedup {degraded.speedup:.2f}x  "
          f"(survivors: {degraded.num_survivors})")

    print("PASS" if ok else "FAILED: recovery drifted from the fault-free run")
    return 0 if ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import RunReport

    report = RunReport.load(args.path)
    if args.json:
        print(report.to_json())
    else:
        print(report.summary())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.obs.perf import PerfAnalysis
    from repro.obs.report import RunReport

    with open(args.path) as fh:
        payload = json.load(fh)
    if args.memory:
        if "traceEvents" in payload:
            print(
                "--memory needs a run report (--report-out); Chrome traces "
                "carry spans, not the allocation ledger",
                file=sys.stderr,
            )
            return 1
        report = RunReport.from_dict(payload)
        if not report.memory:
            print(
                "no memory data in this report (record with observability "
                "enabled so the allocation ledger is populated)",
                file=sys.stderr,
            )
            return 1
        if args.json:
            _emit_json(report.memory)
        else:
            print(f"=== memory observatory ({args.path}) ===")
            print(report.memory_summary())
        return 0
    if "traceEvents" in payload:  # Chrome trace written with --trace-out
        analysis = PerfAnalysis.from_chrome_trace(payload, top_k=args.top_k)
        source = "chrome trace"
    else:  # run report written with --report-out
        report = RunReport.from_dict(payload)
        if not report.perf:
            print(
                "no performance data in this report (profile a run that "
                "exercises the HPC layer, or analyze its --trace-out file)",
                file=sys.stderr,
            )
            return 1
        analysis = PerfAnalysis.from_dict(report.perf)
        source = "run report"
    if args.json:
        _emit_json(analysis.to_dict())
        return 0
    print(f"=== performance analysis ({source}: {args.path}) ===")
    print(analysis.render(top_k=args.top_k))
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.obs.bench import BenchReport, compare, counter_deltas

    old = BenchReport.load(args.old)
    new = BenchReport.load(args.new)
    diff = compare(
        old,
        new,
        threshold=args.threshold,
        min_wall_s=args.min_wall_s,
        mem_threshold=args.mem_threshold,
    )
    if args.json:
        _emit_json(diff.to_dict())
    else:
        print(diff.render())
        if args.explain and (diff.regressions or diff.failed):
            print()
            print("explain (top counter movements per flagged benchmark):")
            for delta in diff.regressions:
                old_entry = old.entry(delta.name)
                new_entry = new.entry(delta.name)
                if old_entry is None or new_entry is None:
                    continue
                rows = counter_deltas(old_entry, new_entry, top_k=args.top_k)
                print(f"  {delta.name}")
                if not rows:
                    print("    (no key counters moved — look at the code, "
                          "not the harness)")
                for name, old_v, new_v in rows:
                    change = (
                        f"{new_v / old_v:.2f}x" if old_v else "new"
                    )
                    print(f"    {name:<46} {old_v:>14g} -> {new_v:<14g} {change}")
    return 1 if diff.has_regressions else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.hpc.faults import FaultSpec
    from repro.serve import CampaignServer, ServerConfig, TenantPolicy

    fault_specs = []
    for spec in args.crash_rank or []:
        # "rank[:dispatch_index]" — batch-scope rank crash; without an
        # index the rank dies on the first dispatch that lands on it
        rank_s, _, at_s = spec.partition(":")
        fault_specs.append(
            FaultSpec(
                kind="rank_crash",
                rank=int(rank_s),
                at_step=int(at_s) if at_s else None,
                probability=0.0 if at_s else 1.0,
                scope="batch",
            )
        )
    config = ServerConfig(
        num_ranks=args.ranks,
        checkpoint_period=args.checkpoint_period,
        max_job_attempts=args.max_attempts,
        global_queue_limit=args.queue_limit,
        default_tenant_policy=TenantPolicy(max_queued=args.tenant_queue_limit),
        default_timeout_s=args.timeout,
        warm_start=not args.no_warm_start,
        fault_specs=fault_specs,
        fault_seed=args.seed,
        fsync=args.fsync,
        rank_memory_bytes=args.rank_memory_bytes,
        batch_enabled=not args.no_batch,
        batch_size=args.batch_size,
    )
    server = CampaignServer(args.state_dir, config)
    try:
        server.run(
            max_ticks=args.max_ticks,
            stop_when_idle=args.stop_when_idle,
            tick_sleep_s=args.tick_sleep,
        )
    finally:
        server.close()
    health = server.health()
    if args.json:
        _emit_json({"command": "serve", **health})
        return 0
    print(f"campaign server on {args.state_dir}: {health['status']}")
    print(f"  ticks: {health['ticks']}   journal seq: {health['journal_seq']}")
    print(f"  ranks: {len(health['alive_ranks'])}/{args.ranks} alive "
          f"(lost: {health['lost_ranks'] or 'none'})")
    for state, count in sorted(health["jobs"].items()):
        print(f"  {state:10s} {count}")
    if health["dedup_hits"]:
        print(f"  dedup hits: {health['dedup_hits']}")
    if health["shed"]:
        print(f"  shed: {health['shed']}")
    batch = health.get("batch", {})
    if batch.get("enabled") and batch.get("groups_executed"):
        print(
            f"  batching: {batch['batched_evals']} batched / "
            f"{batch['solo_evals']} solo evals in "
            f"{batch['groups_executed']} groups "
            f"(mean occupancy {batch['mean_occupancy']}, "
            f"max {batch['max_occupancy']})"
        )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import uuid

    from repro.serve.spec import JobSpec, SpecError

    try:
        spec = JobSpec(
            tenant=args.tenant,
            kind=args.kind,
            molecule=args.molecule,
            geometry=args.geometry,
            max_iterations=args.max_iterations,
            seed=args.seed,
            priority=args.priority,
            deadline_s=args.deadline,
            timeout_s=args.timeout,
        )
    except SpecError as err:
        print(f"invalid job spec: {err}", file=sys.stderr)
        return 1
    inbox = os.path.join(args.state_dir, "inbox")
    os.makedirs(inbox, exist_ok=True)
    submission_id = args.submission_id or uuid.uuid4().hex[:12]
    # atomic spool write: the server never sees a half-written file
    path = os.path.join(inbox, f"{submission_id}.json")
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(spec.to_dict(), fh)
    os.replace(tmp, path)
    if args.json:
        _emit_json(
            {
                "command": "submit",
                "submission_id": submission_id,
                "spooled": path,
                "content_key": spec.content_key(),
            }
        )
    else:
        print(f"spooled submission {submission_id} ({args.kind} {args.molecule} "
              f"for tenant {args.tenant!r}) -> {path}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.serve.server import load_state_view

    if not os.path.isdir(args.state_dir):
        print(f"no server state at {args.state_dir}", file=sys.stderr)
        return 1
    view = load_state_view(args.state_dir)
    if args.json:
        _emit_json({"command": "status", **view})
        return 0
    health = view.get("health") or {}
    print(f"campaign server state at {args.state_dir}")
    print(f"  status: {health.get('status', 'unknown')}   "
          f"journal seq: {view['journal_seq']}   "
          f"draining: {view['draining']}")
    if view["lost_ranks"]:
        print(f"  lost ranks: {view['lost_ranks']}")
    for state, count in sorted(view["by_state"].items()):
        print(f"  {state:10s} {count}")
    if args.jobs:
        for job in view["jobs"]:
            energy = (
                f"{job['energy']:+.10f}" if job["energy"] is not None else "-"
            )
            flags = "".join(
                f" [{f}]"
                for f in ("dedup_hit", "warm_started", "resumed")
                if job.get(f)
            )
            print(f"  {job['job_id']}  {job['tenant']:8s} {job['kind']:5s} "
                  f"{job['molecule']:4s} {job['state']:10s} {energy}{flags}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import Dashboard
    from repro.obs.slo import SLOConfig

    if not os.path.isdir(args.state_dir):
        print(f"no server state at {args.state_dir}", file=sys.stderr)
        return 1
    try:
        slo_config = (
            SLOConfig.load(args.slo_config) if args.slo_config else SLOConfig()
        )
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"bad SLO config {args.slo_config!r}: {err}", file=sys.stderr)
        return 1
    dash = Dashboard(args.state_dir, slo_config=slo_config)
    if args.json:
        _emit_json({"command": "top", **dash.snapshot()})
        return 0
    if args.once:
        print(dash.render())
        return 0
    return dash.run(interval_s=args.interval)


# -- observability plumbing ---------------------------------------------------


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("observability")
    g.add_argument(
        "--profile",
        action="store_true",
        help="enable tracing/metrics and print a run report",
    )
    g.add_argument(
        "--trace-out",
        default="",
        metavar="FILE",
        help="write a Chrome trace-event JSON (view in Perfetto)",
    )
    g.add_argument(
        "--metrics-out",
        default="",
        metavar="FILE",
        help="write metrics (Prometheus text; JSONL if FILE ends in .jsonl)",
    )
    g.add_argument(
        "--report-out",
        default="",
        metavar="FILE",
        help="write the aggregated run report as JSON",
    )


def _obs_requested(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "profile", False)
        or getattr(args, "plan_stats", False)
        or getattr(args, "trace_out", "")
        or getattr(args, "metrics_out", "")
        or getattr(args, "report_out", "")
    )


_PLAN_STAT_ROWS = [
    ("repro_plan_compile_total", "plans compiled"),
    ("repro_plan_ops_total", "compiled ops emitted"),
    ("repro_plan_fused_gates_removed_total", "gates removed by fusion"),
    ("repro_plan_diag_gates_folded_total", "diagonal gates folded"),
    ("repro_plan_executions_total", "plan executions"),
    ("repro_plan_ops_executed_total", "kernel ops executed"),
    ("repro_plan_prefix_resumes_total", "prefix-state resumes"),
    ("repro_plan_prefix_ops_skipped_total", "ops skipped via prefix reuse"),
]


def _plan_stats_lines() -> List[str]:
    """Human-readable view of the compiled-plan counters (summed over
    label sets, e.g. the circuit and generator prefix engines)."""
    totals: Dict[str, float] = {}
    for snap in obs.get_registry().snapshot():
        name = snap["name"]
        if isinstance(name, str) and name.startswith("repro_plan_"):
            totals[name] = totals.get(name, 0.0) + float(snap["value"])  # type: ignore[arg-type]
    lines = ["compiled-plan stats:"]
    if not totals:
        lines.append("  (no compiled-plan activity recorded)")
        return lines
    for name, label in _PLAN_STAT_ROWS:
        if name in totals:
            lines.append(f"  {label + ':':32s}{totals.pop(name):12.0f}")
    for name in sorted(totals):  # future counters show up unformatted
        lines.append(f"  {name}: {totals[name]:.0f}")
    return lines


def _setup_obs(args: argparse.Namespace) -> bool:
    if not _obs_requested(args):
        return False
    obs.reset()
    obs.configure(enabled=True)
    _REPORT_EXTRAS.clear()
    return True


def _finalize_obs(args: argparse.Namespace, wall_time_s: float) -> None:
    """Write the requested artifacts and (under --profile) the summary."""
    meta = {"command": f"repro {args.command}"}
    meta.update(_REPORT_EXTRAS.get("meta", {}))
    report = obs.collect_report(
        meta=meta,
        comm_stats=_REPORT_EXTRAS.get("comm_stats"),
        cache_stats=_REPORT_EXTRAS.get("cache_stats"),
        fault_ledger=_REPORT_EXTRAS.get("fault_ledger"),
        convergence=_REPORT_EXTRAS.get("convergence"),
        wall_time_s=wall_time_s,
    )
    notices = []
    if args.trace_out:
        obs.get_tracer().write_chrome_trace(args.trace_out)
        notices.append(f"trace written to {args.trace_out}")
    if args.metrics_out:
        registry = obs.get_registry()
        if args.metrics_out.endswith(".jsonl"):
            registry.write_jsonl(args.metrics_out)
        else:
            registry.write_prometheus(args.metrics_out)
        notices.append(f"metrics written to {args.metrics_out}")
    if args.report_out:
        report.save(args.report_out)
        notices.append(f"report written to {args.report_out}")
    # keep stdout machine-readable under --json
    stream = sys.stderr if getattr(args, "json", False) else sys.stdout
    for line in notices:
        print(line, file=stream)
    if getattr(args, "plan_stats", False):
        for line in _plan_stats_lines():
            print(line, file=stream)
    if args.profile:
        print(report.summary(), file=stream)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalable VQE simulation workflow (SC-W 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_vqe = sub.add_parser("vqe", help="run the Fig. 2 VQE pipeline")
    p_vqe.add_argument("molecule", help="h2 | h2o | h4 | lih")
    p_vqe.add_argument("--core", default="", help="comma-separated core orbitals")
    p_vqe.add_argument("--active", default="", help="comma-separated active orbitals")
    p_vqe.add_argument("--no-downfold", action="store_true")
    p_vqe.add_argument(
        "--taper",
        action="store_true",
        help="remove Z2 symmetry qubits before VQE (HF sector)",
    )
    p_vqe.add_argument("--no-exact", action="store_true")
    p_vqe.add_argument("--tol", type=float, default=1e-4)
    p_vqe.add_argument("--json", action="store_true", help="emit JSON on stdout")
    p_vqe.add_argument(
        "--plan-stats",
        action="store_true",
        help="print compiled-circuit-plan counters (ops, fusion, prefix reuse)",
    )
    _add_obs_args(p_vqe)
    p_vqe.set_defaults(func=_cmd_vqe)

    p_adapt = sub.add_parser("adapt", help="run ADAPT-VQE (Fig. 5)")
    p_adapt.add_argument("molecule")
    p_adapt.add_argument("--core", default="")
    p_adapt.add_argument("--active", default="")
    p_adapt.add_argument("--max-iterations", type=int, default=25)
    p_adapt.add_argument(
        "--taper",
        action="store_true",
        help="remove Z2 symmetry qubits before ADAPT (HF sector)",
    )
    p_adapt.add_argument("--json", action="store_true", help="emit JSON on stdout")
    p_adapt.add_argument(
        "--plan-stats",
        action="store_true",
        help="print compiled-circuit-plan counters (ops, fusion, prefix reuse)",
    )
    _add_obs_args(p_adapt)
    p_adapt.set_defaults(func=_cmd_adapt)

    p_qpe = sub.add_parser("qpe", help="run quantum phase estimation")
    p_qpe.add_argument("molecule")
    p_qpe.add_argument("--ancillas", type=int, default=10)
    _add_obs_args(p_qpe)
    p_qpe.set_defaults(func=_cmd_qpe)

    p_counts = sub.add_parser("counts", help="Fig. 1/3 resource sweeps")
    p_counts.add_argument("--min-qubits", type=int, default=12)
    p_counts.add_argument("--max-qubits", type=int, default=30)
    p_counts.add_argument("--json", action="store_true", help="emit JSON on stdout")
    _add_obs_args(p_counts)
    p_counts.set_defaults(func=_cmd_counts)

    p_faults = sub.add_parser(
        "faults", help="fault-injection and recovery demo"
    )
    p_faults.add_argument("molecule", nargs="?", default="h2")
    p_faults.add_argument("--ranks", type=int, default=2)
    p_faults.add_argument("--seed", type=int, default=7)
    p_faults.add_argument("--transient-rate", type=float, default=0.1)
    p_faults.add_argument("--corruption-rate", type=float, default=0.02)
    p_faults.add_argument("--crash-iteration", type=int, default=1)
    p_faults.add_argument("--checkpoint-period", type=int, default=1)
    p_faults.add_argument("--max-iterations", type=int, default=10)
    p_faults.add_argument("--json", action="store_true", help="emit JSON on stdout")
    _add_obs_args(p_faults)
    p_faults.set_defaults(func=_cmd_faults)

    p_report = sub.add_parser(
        "report", help="pretty-print a saved run report (--report-out)"
    )
    p_report.add_argument("path", help="run-report JSON file")
    p_report.add_argument(
        "--json", action="store_true", help="dump the raw report JSON"
    )
    p_report.set_defaults(func=_cmd_report)

    p_analyze = sub.add_parser(
        "analyze",
        help="per-rank timelines, comm matrix, and critical path from a "
        "saved run report or Chrome trace",
    )
    p_analyze.add_argument(
        "path", help="run-report JSON (--report-out) or Chrome trace (--trace-out)"
    )
    p_analyze.add_argument(
        "--top-k", type=int, default=10, help="critical-path spans to list"
    )
    p_analyze.add_argument(
        "--json", action="store_true", help="emit the analysis as JSON"
    )
    p_analyze.add_argument(
        "--memory",
        action="store_true",
        help="show the allocation-ledger section of a run report "
        "(per-category peaks, per-rank peaks, top allocating spans)",
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_bdiff = sub.add_parser(
        "bench-diff",
        help="compare two BENCH_*.json files; exit 1 on regressions",
    )
    p_bdiff.add_argument("old", help="baseline BENCH_*.json")
    p_bdiff.add_argument("new", help="candidate BENCH_*.json")
    p_bdiff.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="flag entries slower than baseline by this factor (default 1.25)",
    )
    p_bdiff.add_argument(
        "--min-wall-s",
        type=float,
        default=0.05,
        help="ignore entries where both sides are faster than this (noise floor)",
    )
    p_bdiff.add_argument(
        "--mem-threshold",
        type=float,
        default=None,
        help="flag entries whose peak ledger bytes grew by this factor "
        "(default: same as --threshold)",
    )
    p_bdiff.add_argument(
        "--explain",
        action="store_true",
        help="on flagged regressions, print the top counter movements "
        "between the two runs",
    )
    p_bdiff.add_argument(
        "--top-k", type=int, default=5,
        help="counter movements to list per flagged benchmark (--explain)",
    )
    p_bdiff.add_argument(
        "--json", action="store_true", help="emit the diff as JSON"
    )
    p_bdiff.set_defaults(func=_cmd_bench_diff)

    p_serve = sub.add_parser(
        "serve",
        help="run the crash-safe multi-tenant campaign server",
    )
    p_serve.add_argument(
        "--state-dir",
        default="serve-state",
        help="server state root (journal, store, inbox, checkpoints)",
    )
    p_serve.add_argument("--ranks", type=int, default=4)
    p_serve.add_argument("--max-ticks", type=int, default=None)
    p_serve.add_argument(
        "--stop-when-idle",
        action="store_true",
        help="exit once every job reached a terminal state",
    )
    p_serve.add_argument(
        "--tick-sleep", type=float, default=0.05, metavar="S",
        help="sleep between scheduling rounds (seconds)",
    )
    p_serve.add_argument("--checkpoint-period", type=int, default=1)
    p_serve.add_argument("--max-attempts", type=int, default=3)
    p_serve.add_argument("--queue-limit", type=int, default=64)
    p_serve.add_argument(
        "--rank-memory-bytes",
        type=int,
        default=16 << 30,
        help="memory budget of one worker rank; jobs predicted to "
        "exceed it are rejected at admission (default 16 GiB)",
    )
    p_serve.add_argument("--tenant-queue-limit", type=int, default=16)
    p_serve.add_argument(
        "--timeout", type=float, default=None,
        help="default per-job execution budget (seconds)",
    )
    p_serve.add_argument("--no-warm-start", action="store_true")
    p_serve.add_argument(
        "--crash-rank",
        action="append",
        metavar="RANK[:DISPATCH]",
        help="inject a deterministic rank crash at the Nth dispatch "
        "(repeatable)",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--batch-size", type=int, default=32,
        help="max campaigns stacked into one batched evaluation sweep",
    )
    p_serve.add_argument(
        "--no-batch", action="store_true",
        help="disable the cross-campaign evaluation broker (solo ticks)",
    )
    p_serve.add_argument(
        "--fsync", action="store_true",
        help="fsync every journal append (durable, slower)",
    )
    p_serve.add_argument("--json", action="store_true", help="emit JSON on stdout")
    _add_obs_args(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="spool a job submission into a server's inbox"
    )
    p_submit.add_argument("--state-dir", default="serve-state")
    p_submit.add_argument("--tenant", required=True)
    p_submit.add_argument("--kind", choices=("vqe", "adapt"), default="vqe")
    p_submit.add_argument("--molecule", default="h2", help="h2 | h4 | lih | h2o")
    p_submit.add_argument(
        "--geometry", type=float, default=None,
        help="scan parameter (bond length / spacing, Angstrom)",
    )
    p_submit.add_argument("--max-iterations", type=int, default=8)
    p_submit.add_argument(
        "--seed", type=int, default=0,
        help="determinism seed (distinct seeds = distinct campaigns "
        "that still batch together)",
    )
    p_submit.add_argument("--priority", type=int, default=0)
    p_submit.add_argument(
        "--deadline", type=float, default=None,
        help="wall-clock budget from admission (seconds)",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=None,
        help="execution-time budget (seconds)",
    )
    p_submit.add_argument(
        "--submission-id", default="",
        help="idempotency key (resubmitting the same id is a no-op)",
    )
    p_submit.add_argument("--json", action="store_true", help="emit JSON on stdout")
    p_submit.set_defaults(func=_cmd_submit)

    p_status = sub.add_parser(
        "status", help="read-only view of a campaign server's state"
    )
    p_status.add_argument("--state-dir", default="serve-state")
    p_status.add_argument(
        "--jobs", action="store_true", help="list every job, not just counts"
    )
    p_status.add_argument("--json", action="store_true", help="emit JSON on stdout")
    p_status.set_defaults(func=_cmd_status)

    p_top = sub.add_parser(
        "top",
        help="live operator dashboard over a server state dir "
        "(reads status.json + events.jsonl + metrics.jsonl only)",
    )
    p_top.add_argument("--state-dir", default="serve-state")
    p_top.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    p_top.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="redraw period for the live view (seconds)",
    )
    p_top.add_argument(
        "--slo-config", default="",
        help="JSON file of SLO objectives (see repro.obs.slo.SLOConfig)",
    )
    p_top.add_argument(
        "--json", action="store_true",
        help="emit one JSON snapshot on stdout (implies --once)",
    )
    p_top.set_defaults(func=_cmd_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    profiling = _setup_obs(args)
    t0 = time.perf_counter()
    try:
        rc = args.func(args)
    finally:
        if profiling:
            _finalize_obs(args, wall_time_s=time.perf_counter() - t0)
            obs.disable()
    return rc


if __name__ == "__main__":
    sys.exit(main())
