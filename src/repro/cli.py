"""Command-line interface: ``python -m repro <command>``.

Five commands cover the workflows the paper demonstrates:

* ``vqe``   — the Fig. 2 pipeline on a named molecule (optionally with
  frozen-core downfolding),
* ``adapt`` — the Fig. 5 ADAPT-VQE experiment,
* ``qpe``   — phase estimation on the same Hamiltonians,
* ``counts`` — the Fig. 1/3 resource-counting sweeps,
* ``faults`` — the fault-injection/recovery demo: a distributed run
  surviving transient exchange faults via retries, a checkpointed
  ADAPT campaign surviving an injected rank crash, and a batch
  schedule degrading around a dead rank.

Everything prints plain aligned text; exit code 0 means the run
completed and (where an exact reference exists) matched it to the
requested tolerance.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.chem.molecule import Molecule, h2, h2o, h4_chain, lih

_MOLECULES = {"h2": h2, "h2o": h2o, "h4": h4_chain, "lih": lih}


def _get_molecule(name: str) -> Molecule:
    try:
        return _MOLECULES[name.lower()]()
    except KeyError:
        raise SystemExit(
            f"unknown molecule {name!r}; choose from {sorted(_MOLECULES)}"
        )


def _cmd_vqe(args: argparse.Namespace) -> int:
    from repro.core.workflow import run_vqe_workflow

    molecule = _get_molecule(args.molecule)
    core = [int(x) for x in args.core.split(",")] if args.core else None
    active = [int(x) for x in args.active.split(",")] if args.active else None
    t0 = time.perf_counter()
    result = run_vqe_workflow(
        molecule,
        core_orbitals=core,
        active_orbitals=active,
        downfold=not args.no_downfold,
        compute_exact=not args.no_exact,
    )
    dt = time.perf_counter() - t0
    print(f"molecule:        {molecule}")
    print(f"qubits:          {result.num_qubits}")
    print(f"Pauli terms:     {result.qubit_hamiltonian.num_terms}")
    print(f"RHF energy:      {result.scf.energy:+.8f} Ha")
    if result.downfolding is not None:
        print(f"|sigma_ext|_1:   {result.downfolding.sigma_norm1:.5f}")
    print(f"VQE energy:      {result.vqe.energy:+.8f} Ha")
    if result.exact_energy is not None:
        print(f"exact energy:    {result.exact_energy:+.8f} Ha")
        print(f"error:           {result.error_vs_exact * 1000:.5f} mHa")
    print(f"wall time:       {dt:.1f} s")
    if result.exact_energy is not None and result.error_vs_exact > args.tol:
        print(f"FAILED: error above tolerance {args.tol}")
        return 1
    return 0


def _cmd_adapt(args: argparse.Namespace) -> int:
    from repro.chem.downfolding import hermitian_downfold
    from repro.chem.fci import exact_ground_energy
    from repro.chem.hamiltonian import build_molecular_hamiltonian
    from repro.chem.pools import uccsd_pool
    from repro.chem.reference import hartree_fock_state
    from repro.chem.scf import run_rhf
    from repro.core.adapt import AdaptVQE

    molecule = _get_molecule(args.molecule)
    scf = run_rhf(molecule)
    hamiltonian = build_molecular_hamiltonian(scf)
    if args.core:
        core = [int(x) for x in args.core.split(",")]
        active = [int(x) for x in args.active.split(",")]
        down = hermitian_downfold(hamiltonian, scf.mo_energies, core, active)
        heff = down.effective_hamiltonian.chop(1e-8)
        n_elec = down.num_electrons
    else:
        heff = hamiltonian.to_qubit()
        n_elec = hamiltonian.num_electrons
    n_qubits = heff.num_qubits
    e_ref = exact_ground_energy(heff, num_particles=n_elec, sz=0)
    adapt = AdaptVQE(
        heff,
        uccsd_pool(n_qubits, n_elec),
        hartree_fock_state(n_qubits, n_elec),
        max_iterations=args.max_iterations,
        reference_energy=e_ref,
        energy_tolerance=1e-3,
    )
    result = adapt.run(verbose=True)
    hit = result.iterations_to_accuracy(1e-3)
    print(f"exact:   {e_ref:+.8f} Ha")
    print(f"final:   {result.energy:+.8f} Ha")
    print(f"1 mHa at iteration: {hit}")
    return 0 if hit is not None else 1


def _cmd_qpe(args: argparse.Namespace) -> int:
    from repro.chem.fci import exact_ground_energy
    from repro.chem.hamiltonian import build_molecular_hamiltonian
    from repro.chem.reference import hartree_fock_state
    from repro.chem.scf import run_rhf
    from repro.core.qpe import run_qpe

    molecule = _get_molecule(args.molecule)
    scf = run_rhf(molecule)
    hq = build_molecular_hamiltonian(scf).to_qubit()
    n_so = hq.num_qubits
    n_e = scf.num_electrons
    e_exact = exact_ground_energy(hq, num_particles=n_e, sz=0)
    window = (e_exact - abs(e_exact), e_exact + abs(e_exact) * 0.5)
    res = run_qpe(
        hq,
        hartree_fock_state(n_so, n_e),
        num_ancillas=args.ancillas,
        energy_window=window,
    )
    print(f"QPE energy:   {res.energy:+.8f} Ha")
    print(f"exact:        {e_exact:+.8f} Ha")
    print(f"resolution:   {res.resolution * 1000:.4f} mHa")
    print(f"success prob: {res.success_probability:.3f}")
    return 0 if abs(res.energy - e_exact) <= 2 * res.resolution else 1


def _cmd_counts(args: argparse.Namespace) -> int:
    from repro.core.counting import (
        energy_evaluation_gate_counts,
        jw_pauli_term_count,
        statevector_memory_bytes,
        uccsd_gate_count,
    )

    print(
        f"{'qubits':>7} {'uccsd_gates':>12} {'pauli_terms':>12} "
        f"{'memory_GiB':>11} {'non_caching':>12} {'caching':>10}"
    )
    for n in range(args.min_qubits, args.max_qubits + 1, 2):
        cost = energy_evaluation_gate_counts(n)
        print(
            f"{n:>7} {uccsd_gate_count(n):>12,} {jw_pauli_term_count(n):>12,} "
            f"{statevector_memory_bytes(n) / (1 << 30):>11.4f} "
            f"{cost.non_caching_gates:>12.2e} {cost.caching_gates:>10.2e}"
        )
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import tempfile

    import numpy as np

    from repro.chem.fci import exact_ground_energy
    from repro.chem.hamiltonian import build_molecular_hamiltonian
    from repro.chem.pools import uccsd_pool
    from repro.chem.reference import hartree_fock_state
    from repro.chem.scf import run_rhf
    from repro.core.adapt import AdaptVQE
    from repro.core.campaign import CampaignRunner
    from repro.hpc.distributed import DistributedStatevector
    from repro.hpc.faults import FaultInjector, FaultSpec
    from repro.hpc.scheduler import BatchScheduler, Job
    from repro.ir.circuit import Circuit
    from repro.utils.retry import RetryPolicy

    molecule = _get_molecule(args.molecule)
    scf = run_rhf(molecule)
    hq = build_molecular_hamiltonian(scf).to_qubit()
    n = hq.num_qubits
    n_e = scf.num_electrons
    e_ref = exact_ground_energy(hq, num_particles=n_e, sz=0)

    # -- 1. distributed execution through a faulty, retried link -------------
    rng = np.random.default_rng(args.seed)
    circuit = Circuit(n)
    for _ in range(6 * n):
        q = int(rng.integers(n))
        circuit.h(q).rz(float(rng.uniform(0, 3.14)), q)
        circuit.cx(q, (q + 1) % n)
    clean = DistributedStatevector(n, args.ranks)
    clean.run(circuit)
    injector = FaultInjector(
        [
            FaultSpec("transient_exchange", probability=args.transient_rate),
            FaultSpec("corruption", probability=args.corruption_rate, bit_flips=2),
        ],
        seed=args.seed,
    )
    faulty = DistributedStatevector(
        n,
        args.ranks,
        fault_injector=injector,
        retry_policy=RetryPolicy(max_attempts=10, seed=args.seed),
    )
    faulty.run(circuit)
    stats = faulty.comm.stats
    identical = bool(np.allclose(faulty.gather(), clean.gather(), atol=1e-12))
    print(f"distributed run:  {n} qubits over {args.ranks} ranks, "
          f"{faulty.gates_applied} gates, {faulty.exchanges} exchanges")
    print(f"  transient faults: {stats.transient_errors:3d}   "
          f"corrupted msgs: {stats.corrupted_messages}")
    print(f"  retries:          {stats.retries:3d}   "
          f"simulated backoff: {stats.retry_backoff_s * 1e3:.3f} ms")
    print(f"  state identical to fault-free run: {identical}")

    # -- 2. checkpointed ADAPT campaign surviving a rank crash ---------------
    def make_adapt() -> AdaptVQE:
        return AdaptVQE(
            hq,
            uccsd_pool(n, n_e),
            hartree_fock_state(n, n_e),
            max_iterations=args.max_iterations,
            reference_energy=e_ref,
            energy_tolerance=1e-6,
        )

    baseline = make_adapt().run()
    campaign_injector = FaultInjector(
        [
            FaultSpec("rank_crash", scope="campaign", at_step=args.crash_iteration),
            FaultSpec("transient_exchange", probability=args.transient_rate),
        ],
        seed=args.seed,
    )
    with tempfile.TemporaryDirectory() as ckpt_dir:
        runner = CampaignRunner(
            ckpt_dir,
            checkpoint_period=args.checkpoint_period,
            fault_injector=campaign_injector,
            retry_policy=RetryPolicy(max_attempts=10, seed=args.seed),
            distributed_ranks=args.ranks,
        )
        campaign = runner.run_adapt(make_adapt())
    drift = abs(campaign.energy - baseline.energy)
    print(f"adapt campaign:   crash injected at iteration {args.crash_iteration}, "
          f"checkpoint period {args.checkpoint_period}")
    print(f"  restarts: {campaign.restarts}   iterations recomputed: "
          f"{campaign.iterations_recomputed}   checkpoints: "
          f"{campaign.checkpoints_written}")
    print(f"  {campaign.fault_ledger.summary()}")
    print(f"  fault-free energy: {baseline.energy:+.10f} Ha")
    print(f"  recovered energy:  {campaign.energy:+.10f} Ha  "
          f"(drift {drift:.2e} Ha)")

    # -- 3. batch schedule degrading around a dead rank ----------------------
    scheduler = BatchScheduler(args.ranks)
    jobs = [Job(f"job_{k}", n, 500 * (k % 4 + 1)) for k in range(4 * args.ranks)]
    healthy = scheduler.schedule(jobs)
    degraded = scheduler.reschedule_after_failure(
        healthy, dead_rank=0, completed=[j.name for j in healthy.assignments[0][:1]]
    )
    print(f"batch schedule:   {len(jobs)} jobs on {args.ranks} ranks, rank 0 dies")
    print(f"  healthy : makespan {healthy.makespan:.4f} s  "
          f"speedup {healthy.speedup:.2f}x")
    print(f"  degraded: makespan {degraded.makespan:.4f} s  "
          f"speedup {degraded.speedup:.2f}x  "
          f"(survivors: {degraded.num_survivors})")

    ok = identical and drift < 1e-8
    print("PASS" if ok else "FAILED: recovery drifted from the fault-free run")
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalable VQE simulation workflow (SC-W 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_vqe = sub.add_parser("vqe", help="run the Fig. 2 VQE pipeline")
    p_vqe.add_argument("molecule", help="h2 | h2o | h4 | lih")
    p_vqe.add_argument("--core", default="", help="comma-separated core orbitals")
    p_vqe.add_argument("--active", default="", help="comma-separated active orbitals")
    p_vqe.add_argument("--no-downfold", action="store_true")
    p_vqe.add_argument("--no-exact", action="store_true")
    p_vqe.add_argument("--tol", type=float, default=1e-4)
    p_vqe.set_defaults(func=_cmd_vqe)

    p_adapt = sub.add_parser("adapt", help="run ADAPT-VQE (Fig. 5)")
    p_adapt.add_argument("molecule")
    p_adapt.add_argument("--core", default="")
    p_adapt.add_argument("--active", default="")
    p_adapt.add_argument("--max-iterations", type=int, default=25)
    p_adapt.set_defaults(func=_cmd_adapt)

    p_qpe = sub.add_parser("qpe", help="run quantum phase estimation")
    p_qpe.add_argument("molecule")
    p_qpe.add_argument("--ancillas", type=int, default=10)
    p_qpe.set_defaults(func=_cmd_qpe)

    p_counts = sub.add_parser("counts", help="Fig. 1/3 resource sweeps")
    p_counts.add_argument("--min-qubits", type=int, default=12)
    p_counts.add_argument("--max-qubits", type=int, default=30)
    p_counts.set_defaults(func=_cmd_counts)

    p_faults = sub.add_parser(
        "faults", help="fault-injection and recovery demo"
    )
    p_faults.add_argument("molecule", nargs="?", default="h2")
    p_faults.add_argument("--ranks", type=int, default=2)
    p_faults.add_argument("--seed", type=int, default=7)
    p_faults.add_argument("--transient-rate", type=float, default=0.1)
    p_faults.add_argument("--corruption-rate", type=float, default=0.02)
    p_faults.add_argument("--crash-iteration", type=int, default=1)
    p_faults.add_argument("--checkpoint-period", type=int, default=1)
    p_faults.add_argument("--max-iterations", type=int, default=10)
    p_faults.set_defaults(func=_cmd_faults)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
