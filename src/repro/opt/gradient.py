"""Gradients for product-of-exponentials ansatze.

``AnsatzObjective`` binds (reference state, generator list, observable)
into an energy function plus two gradient modes:

* **adjoint** — the reverse-mode statevector gradient: one forward
  evolution plus one backward sweep yields the full gradient at a cost
  of ~3 evolutions total, independent of parameter count.  This is the
  simulator-only trick that makes the classical optimization loop
  (paper §6.2's acknowledged bottleneck) tractable at scale.
* **finite difference** — central differences; used as the reference
  implementation in tests and as a fallback for non-product ansatze.

Derivation of the adjoint sweep for E(theta) = <ref|U^dag H U|ref>,
U = U_m ... U_1, U_k = exp(theta_k A_k):

    dE/dtheta_k = 2 Re <lambda_k| A_k |phi_k>,
    phi_k = U_k ... U_1 |ref>,   lambda_k = U_{k+1}^dag ... U_m^dag H U |ref>,

computed by one backward pass applying U_k^dag to both vectors.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.ir.compiled import compile_observable
from repro.ir.pauli import PauliSum
from repro.sim.evolution import GeneratorEvolution

__all__ = ["AnsatzObjective", "finite_difference_gradient"]


def finite_difference_gradient(
    fun: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient (2m evaluations)."""
    x = np.asarray(x, dtype=float)
    grad = np.zeros_like(x)
    for k in range(x.size):
        step = np.zeros_like(x)
        step[k] = eps
        grad[k] = (fun(x + step) - fun(x - step)) / (2.0 * eps)
    return grad


class AnsatzObjective:
    """Energy and analytic gradient of a product-of-exponentials ansatz.

    Parameters
    ----------
    reference_state:
        Dense statevector the ansatz starts from (e.g. Hartree–Fock).
    generators:
        Anti-Hermitian ``PauliSum`` generators; parameter k multiplies
        generator k.
    hamiltonian:
        Hermitian observable.
    """

    def __init__(
        self,
        reference_state: np.ndarray,
        generators: Sequence[PauliSum],
        hamiltonian: PauliSum,
    ):
        self.reference = np.asarray(reference_state, dtype=np.complex128)
        self.hamiltonian = hamiltonian
        # x-mask-batched observable: H|psi> in the adjoint sweep costs
        # one pass per distinct x-mask rather than per term, and the
        # compiled form is shared across the thousands of energy /
        # gradient calls one optimization makes (repro.ir.compiled).
        self._compiled_h = compile_observable(hamiltonian)
        self.evolutions = [GeneratorEvolution(g) for g in generators]
        self.num_parameters = len(self.evolutions)
        self.energy_evaluations = 0
        self.gradient_evaluations = 0
        # prefix-state reuse across consecutive prepare_state calls
        # (same protocol as repro.sim.plan: states parked at factor
        # boundaries, budgeted through PostAnsatzCache accounting);
        # built lazily to keep the opt -> core import edge out of
        # module load.
        self._prefix_cache = None
        self._last_params: Optional[np.ndarray] = None

    def _get_prefix_cache(self):
        if self._prefix_cache is None:
            from repro.core.cache import PostAnsatzCache

            self._prefix_cache = PostAnsatzCache(max_entries=8)
        return self._prefix_cache

    @staticmethod
    def _prefix_key(k: int, params: np.ndarray) -> np.ndarray:
        key = np.empty(k + 1)
        key[0] = float(k)
        key[1:] = params[:k]
        return key

    def prepare_state(self, params: np.ndarray) -> np.ndarray:
        """|psi(theta)> = prod_k exp(theta_k A_k) |ref> (k ascending).

        Consecutive calls reuse parked intermediate states: the state
        after factors ``0..k-1`` depends only on ``params[:k]``, so when
        a call changes only a parameter suffix (the parameter-shift /
        pool-screening access pattern) evolution resumes from the
        longest parked prefix instead of replaying every factor.
        """
        params = np.asarray(params, dtype=float)
        if len(params) != self.num_parameters:
            raise ValueError("parameter count mismatch")
        m = self.num_parameters
        cache = self._get_prefix_cache()
        start = 0
        state: Optional[np.ndarray] = None
        for k in range(m, 0, -1):
            snap = cache.get(self._prefix_key(k, params))
            if snap is not None:
                start, state = k, snap
                break
        if state is None:
            state = self.reference.copy()
        if start and obs.enabled():
            obs.inc(
                "repro_plan_prefix_resumes_total",
                help="Plan executions resumed from a parked prefix state",
            )
            obs.inc(
                "repro_plan_prefix_ops_skipped_total",
                start,
                help="Kernel ops skipped via prefix-state reuse",
                labels={"engine": "generator"},
            )
        park = {m}
        last = self._last_params
        if last is not None and last.shape == params.shape:
            changed = np.nonzero(params != last)[0]
            if changed.size:
                park.add(int(changed[0]))
        for k in range(start, m):
            if k in park and k > start:
                # GeneratorEvolution.apply returns fresh arrays, so
                # intermediate states park without copying.
                cache.put(self._prefix_key(k, params), state)
            state = self.evolutions[k].apply(state, float(params[k]))
        if start == m:
            state = state.copy()  # full hit: never hand out the cached array
        else:
            cache.put(self._prefix_key(m, params), state.copy())
        self._last_params = params.copy()
        return state

    def energy(self, params: np.ndarray) -> float:
        self.energy_evaluations += 1
        with obs.span("opt.objective_energy", parameters=self.num_parameters):
            state = self.prepare_state(np.asarray(params, dtype=float))
            val = self._compiled_h.expectation(state)
        return float(val.real)

    def gradient(self, params: np.ndarray) -> np.ndarray:
        """Adjoint-mode gradient: O(1) extra evolutions, exact."""
        self.gradient_evaluations += 1
        with obs.span("opt.objective_gradient", parameters=self.num_parameters):
            return self._gradient_impl(np.asarray(params, dtype=float))

    def _gradient_impl(self, params: np.ndarray) -> np.ndarray:
        psi = self.prepare_state(params)
        lam = self._compiled_h.apply(psi)
        phi = psi
        grad = np.zeros(self.num_parameters)
        for k in range(self.num_parameters - 1, -1, -1):
            ev = self.evolutions[k]
            grad[k] = 2.0 * np.real(np.vdot(lam, ev.apply_generator(phi)))
            phi = ev.apply(phi, -params[k])
            lam = ev.apply(lam, -params[k])
        return grad

    def energy_and_gradient(self, params: np.ndarray):
        """Single-pass convenience for optimizers wanting both."""
        params = np.asarray(params, dtype=float)
        psi = self.prepare_state(params)
        lam = self._compiled_h.apply(psi)
        energy = float(np.real(np.vdot(psi, lam)))
        phi = psi
        grad = np.zeros(self.num_parameters)
        for k in range(self.num_parameters - 1, -1, -1):
            ev = self.evolutions[k]
            grad[k] = 2.0 * np.real(np.vdot(lam, ev.apply_generator(phi)))
            phi = ev.apply(phi, -params[k])
            lam = ev.apply(lam, -params[k])
        self.energy_evaluations += 1
        self.gradient_evaluations += 1
        return energy, grad
