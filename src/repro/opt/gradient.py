"""Gradients for product-of-exponentials ansatze.

``AnsatzObjective`` binds (reference state, generator list, observable)
into an energy function plus two gradient modes:

* **adjoint** — the reverse-mode statevector gradient: one forward
  evolution plus one backward sweep yields the full gradient at a cost
  of ~3 evolutions total, independent of parameter count.  This is the
  simulator-only trick that makes the classical optimization loop
  (paper §6.2's acknowledged bottleneck) tractable at scale.
* **finite difference** — central differences; used as the reference
  implementation in tests and as a fallback for non-product ansatze.

Derivation of the adjoint sweep for E(theta) = <ref|U^dag H U|ref>,
U = U_m ... U_1, U_k = exp(theta_k A_k):

    dE/dtheta_k = 2 Re <lambda_k| A_k |phi_k>,
    phi_k = U_k ... U_1 |ref>,   lambda_k = U_{k+1}^dag ... U_m^dag H U |ref>,

computed by one backward pass applying U_k^dag to both vectors.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.ir.compiled import compile_observable
from repro.ir.pauli import PauliSum
from repro.sim.evolution import GeneratorEvolution

__all__ = ["AnsatzObjective", "finite_difference_gradient"]


def finite_difference_gradient(
    fun: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient (2m evaluations)."""
    x = np.asarray(x, dtype=float)
    grad = np.zeros_like(x)
    for k in range(x.size):
        step = np.zeros_like(x)
        step[k] = eps
        grad[k] = (fun(x + step) - fun(x - step)) / (2.0 * eps)
    return grad


class AnsatzObjective:
    """Energy and analytic gradient of a product-of-exponentials ansatz.

    Parameters
    ----------
    reference_state:
        Dense statevector the ansatz starts from (e.g. Hartree–Fock).
    generators:
        Anti-Hermitian ``PauliSum`` generators; parameter k multiplies
        generator k.
    hamiltonian:
        Hermitian observable.
    """

    def __init__(
        self,
        reference_state: np.ndarray,
        generators: Sequence[PauliSum],
        hamiltonian: PauliSum,
    ):
        self.reference = np.asarray(reference_state, dtype=np.complex128)
        self.hamiltonian = hamiltonian
        # x-mask-batched observable: H|psi> in the adjoint sweep costs
        # one pass per distinct x-mask rather than per term, and the
        # compiled form is shared across the thousands of energy /
        # gradient calls one optimization makes (repro.ir.compiled).
        self._compiled_h = compile_observable(hamiltonian)
        self.evolutions = [GeneratorEvolution(g) for g in generators]
        self.num_parameters = len(self.evolutions)
        self.energy_evaluations = 0
        self.gradient_evaluations = 0

    def prepare_state(self, params: np.ndarray) -> np.ndarray:
        """|psi(theta)> = prod_k exp(theta_k A_k) |ref> (k ascending)."""
        if len(params) != self.num_parameters:
            raise ValueError("parameter count mismatch")
        state = self.reference.copy()
        for theta, ev in zip(params, self.evolutions):
            state = ev.apply(state, float(theta))
        return state

    def energy(self, params: np.ndarray) -> float:
        self.energy_evaluations += 1
        with obs.span("opt.objective_energy", parameters=self.num_parameters):
            state = self.prepare_state(np.asarray(params, dtype=float))
            val = self._compiled_h.expectation(state)
        return float(val.real)

    def gradient(self, params: np.ndarray) -> np.ndarray:
        """Adjoint-mode gradient: O(1) extra evolutions, exact."""
        self.gradient_evaluations += 1
        with obs.span("opt.objective_gradient", parameters=self.num_parameters):
            return self._gradient_impl(np.asarray(params, dtype=float))

    def _gradient_impl(self, params: np.ndarray) -> np.ndarray:
        psi = self.prepare_state(params)
        lam = self._compiled_h.apply(psi)
        phi = psi
        grad = np.zeros(self.num_parameters)
        for k in range(self.num_parameters - 1, -1, -1):
            ev = self.evolutions[k]
            grad[k] = 2.0 * np.real(np.vdot(lam, ev.apply_generator(phi)))
            phi = ev.apply(phi, -params[k])
            lam = ev.apply(lam, -params[k])
        return grad

    def energy_and_gradient(self, params: np.ndarray):
        """Single-pass convenience for optimizers wanting both."""
        params = np.asarray(params, dtype=float)
        psi = self.prepare_state(params)
        lam = self._compiled_h.apply(psi)
        energy = float(np.real(np.vdot(psi, lam)))
        phi = psi
        grad = np.zeros(self.num_parameters)
        for k in range(self.num_parameters - 1, -1, -1):
            ev = self.evolutions[k]
            grad[k] = 2.0 * np.real(np.vdot(lam, ev.apply_generator(phi)))
            phi = ev.apply(phi, -params[k])
            lam = ev.apply(lam, -params[k])
        self.energy_evaluations += 1
        self.gradient_evaluations += 1
        return energy, grad
