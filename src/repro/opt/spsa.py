"""Simultaneous Perturbation Stochastic Approximation (SPSA).

Two function evaluations per iteration regardless of dimension — the
standard choice when expectation values come from finite sampling
(the paper's "traditional sampling" execution mode), where exact
gradients are unavailable and full finite differences are too
expensive.  Classic Spall gain schedules a_k = a/(k + A)^alpha,
c_k = c/k^gamma.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.opt.base import OptimizeResult, Optimizer

__all__ = ["SPSA"]


class SPSA(Optimizer):
    def __init__(
        self,
        max_iterations: int = 300,
        a: float = 0.2,
        c: float = 0.1,
        alpha: float = 0.602,
        gamma: float = 0.101,
        stability: Optional[float] = None,
        seed: int = 42,
    ):
        self.max_iterations = max_iterations
        self.a = a
        self.c = c
        self.alpha = alpha
        self.gamma = gamma
        self.stability = stability  # Spall's A; default 10% of iterations
        self.seed = seed

    def minimize(
        self,
        fun: Callable[[np.ndarray], float],
        x0: np.ndarray,
        gradient=None,
    ) -> OptimizeResult:
        rng = np.random.default_rng(self.seed)
        x = np.asarray(x0, dtype=float).copy()
        big_a = self.stability if self.stability is not None else 0.1 * self.max_iterations
        nfev = 0
        history: List[float] = []
        best_x, best_f = x.copy(), float("inf")
        for k in range(1, self.max_iterations + 1):
            ak = self.a / (k + big_a) ** self.alpha
            ck = self.c / k ** self.gamma
            delta = rng.choice([-1.0, 1.0], size=x.size)
            f_plus = float(fun(x + ck * delta))
            f_minus = float(fun(x - ck * delta))
            nfev += 2
            ghat = (f_plus - f_minus) / (2.0 * ck) * delta
            x = x - ak * ghat
            f_mid = min(f_plus, f_minus)
            history.append(f_mid)
            if f_mid < best_f:
                best_f, best_x = f_mid, x.copy()
        final_f = float(fun(x))
        nfev += 1
        if final_f < best_f:
            best_f, best_x = final_f, x
        return OptimizeResult(
            x=best_x,
            fun=best_f,
            nfev=nfev,
            nit=self.max_iterations,
            converged=True,
            history=history,
        )
