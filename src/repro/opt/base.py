"""Optimizer interface shared by the VQE drivers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

__all__ = ["OptimizeResult", "Optimizer"]

EnergyFn = Callable[[np.ndarray], float]
GradientFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class OptimizeResult:
    """Outcome of a classical minimization."""

    x: np.ndarray
    fun: float
    nfev: int
    nit: int
    converged: bool
    history: List[float] = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"OptimizeResult(fun={self.fun:.8f}, nfev={self.nfev}, "
            f"nit={self.nit}, converged={self.converged})"
        )


class Optimizer(ABC):
    """A classical minimizer of a scalar function of real parameters.

    ``gradient`` is optional; gradient-based optimizers raise if the
    caller cannot supply one (the VQE driver wires in parameter-shift
    or adjoint gradients automatically when available).
    """

    @abstractmethod
    def minimize(
        self,
        fun: EnergyFn,
        x0: np.ndarray,
        gradient: Optional[GradientFn] = None,
    ) -> OptimizeResult:
        """Minimize ``fun`` starting from ``x0``."""
