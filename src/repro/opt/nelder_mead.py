"""Nelder–Mead simplex minimizer (self-contained implementation).

Gradient-free, robust to the mild noise of sampled expectation values
— the workhorse baseline optimizer of NISQ-era VQE studies.
Standard reflection / expansion / contraction / shrink rules with an
adaptive initial simplex.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.opt.base import OptimizeResult, Optimizer

__all__ = ["NelderMead"]


class NelderMead(Optimizer):
    def __init__(
        self,
        max_iterations: int = 2000,
        xatol: float = 1e-8,
        fatol: float = 1e-10,
        initial_step: float = 0.1,
    ):
        self.max_iterations = max_iterations
        self.xatol = xatol
        self.fatol = fatol
        self.initial_step = initial_step

    def minimize(
        self,
        fun: Callable[[np.ndarray], float],
        x0: np.ndarray,
        gradient=None,
    ) -> OptimizeResult:
        x0 = np.asarray(x0, dtype=float)
        n = x0.size
        alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5
        nfev = 0

        def f(x: np.ndarray) -> float:
            nonlocal nfev
            nfev += 1
            return float(fun(x))

        # Initial simplex: x0 plus axis-aligned displacements.
        simplex = [x0]
        for i in range(n):
            step = np.zeros(n)
            step[i] = self.initial_step if x0[i] == 0 else 0.1 * abs(x0[i]) + 1e-3
            simplex.append(x0 + step)
        values = [f(x) for x in simplex]
        history: List[float] = [min(values)]

        it = 0
        converged = False
        for it in range(1, self.max_iterations + 1):
            order = np.argsort(values)
            simplex = [simplex[i] for i in order]
            values = [values[i] for i in order]
            history.append(values[0])

            spread_f = abs(values[-1] - values[0])
            spread_x = max(np.max(np.abs(s - simplex[0])) for s in simplex[1:])
            if spread_f <= self.fatol and spread_x <= self.xatol:
                converged = True
                break

            centroid = np.mean(simplex[:-1], axis=0)
            worst = simplex[-1]
            reflected = centroid + alpha * (centroid - worst)
            fr = f(reflected)
            if values[0] <= fr < values[-2]:
                simplex[-1], values[-1] = reflected, fr
                continue
            if fr < values[0]:
                expanded = centroid + gamma * (reflected - centroid)
                fe = f(expanded)
                if fe < fr:
                    simplex[-1], values[-1] = expanded, fe
                else:
                    simplex[-1], values[-1] = reflected, fr
                continue
            contracted = centroid + rho * (worst - centroid)
            fc = f(contracted)
            if fc < values[-1]:
                simplex[-1], values[-1] = contracted, fc
                continue
            # Shrink toward the best vertex.
            best = simplex[0]
            simplex = [best] + [best + sigma * (s - best) for s in simplex[1:]]
            values = [values[0]] + [f(s) for s in simplex[1:]]

        order = np.argsort(values)
        return OptimizeResult(
            x=simplex[order[0]].copy(),
            fun=float(values[order[0]]),
            nfev=nfev,
            nit=it,
            converged=converged,
            history=history,
        )
