"""Parameter-shift gradients for circuit-mode VQE.

For a rotation gate exp(-i theta G / 2) whose generator G squares to
the identity (RX/RY/RZ/RZZ/RXX/RYY; the phase gate reduces to RZ up to
a global phase), the exact derivative is

    dE/dtheta = [E(theta + pi/2) - E(theta - pi/2)] / 2.

This is the gradient a *hardware* backend can evaluate — no state
access needed — and complements the simulator-only adjoint gradients
of ``repro.opt.gradient``.  The rule requires each named parameter to
appear in exactly one eligible rotation; ansatze like
``repro.ir.library.hardware_efficient_ansatz`` satisfy this by
construction, while trotterized UCCSD (one parameter feeding many
rotations) does not — those use the adjoint path.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.ir.circuit import Circuit
from repro.ir.gates import Parameter
from repro.ir.pauli import PauliSum

__all__ = [
    "parameter_shift_gradient",
    "supports_parameter_shift",
    "batched_parameter_shift_gradient",
]

_SHIFT_GATES = {"rx", "ry", "rz", "p", "rzz", "rxx", "ryy"}


def _parameter_occurrences(circuit: Circuit) -> Dict[str, List[Parameter]]:
    occ: Dict[str, List[Parameter]] = {}
    for g in circuit.gates:
        for p in g.params:
            if isinstance(p, Parameter):
                if g.name not in _SHIFT_GATES:
                    occ.setdefault(p.name, []).append(None)  # ineligible
                else:
                    occ.setdefault(p.name, []).append(p)
    return occ


def supports_parameter_shift(circuit: Circuit) -> bool:
    """True if every parameter appears exactly once, in a gate the
    two-term shift rule covers."""
    occ = _parameter_occurrences(circuit)
    return all(len(v) == 1 and v[0] is not None for v in occ.values())


def parameter_shift_gradient(
    circuit: Circuit,
    hamiltonian: PauliSum,
    params: np.ndarray,
    estimate: Optional[Callable[[Circuit, PauliSum], float]] = None,
) -> np.ndarray:
    """Exact gradient via two energy evaluations per parameter.

    ``estimate`` defaults to the direct estimator; pass a sampling
    estimator's ``estimate`` method for the hardware-faithful variant.
    """
    if not supports_parameter_shift(circuit):
        raise ValueError(
            "parameter-shift rule requires each parameter in exactly one "
            "RX/RY/RZ/P/RZZ/RXX/RYY gate; use adjoint gradients for "
            "product-of-exponential ansatze"
        )
    if estimate is None:
        from repro.core.estimator import DirectEstimator

        estimate = DirectEstimator().estimate

    names = circuit.parameters
    params = np.asarray(params, dtype=float)
    if params.shape != (len(names),):
        raise ValueError(f"expected {len(names)} parameters")
    occ = _parameter_occurrences(circuit)
    values = dict(zip(names, params))

    grad = np.zeros(len(names))
    for k, name in enumerate(names):
        (pref,) = occ[name]
        # gate angle = coeff * p + offset; shifting the *gate angle* by
        # +/- pi/2 means shifting p by +/- pi / (2 coeff).
        if pref.coeff == 0:
            continue
        shift = math.pi / (2.0 * pref.coeff)
        up = dict(values)
        up[name] = values[name] + shift
        down = dict(values)
        down[name] = values[name] - shift
        e_up = estimate(circuit.bind(up), hamiltonian)
        e_down = estimate(circuit.bind(down), hamiltonian)
        # d(angle)/dp = coeff; chain rule restores it.
        grad[k] = 0.5 * (e_up - e_down) * pref.coeff
    return grad


def batched_parameter_shift_gradient(
    circuit: Circuit,
    hamiltonian: PauliSum,
    params: np.ndarray,
) -> np.ndarray:
    """Parameter-shift gradient with all 2m shifted evaluations run as
    ONE batched simulation (paper §6.2 batch execution, applied to the
    gradient workload).

    Numerically identical to :func:`parameter_shift_gradient`; the
    benchmark suite measures the batching speedup.
    """
    from repro.sim.batched import BatchedStatevectorSimulator

    if not supports_parameter_shift(circuit):
        raise ValueError(
            "parameter-shift rule requires each parameter in exactly one "
            "RX/RY/RZ/P/RZZ/RXX/RYY gate"
        )
    names = circuit.parameters
    params = np.asarray(params, dtype=float)
    if params.shape != (len(names),):
        raise ValueError(f"expected {len(names)} parameters")
    occ = _parameter_occurrences(circuit)

    m = len(names)
    batch = 2 * m
    table = {name: np.full(batch, params[k]) for k, name in enumerate(names)}
    coeffs = np.zeros(m)
    for k, name in enumerate(names):
        (pref,) = occ[name]
        coeffs[k] = pref.coeff
        if pref.coeff == 0:
            continue
        shift = math.pi / (2.0 * pref.coeff)
        table[name][2 * k] += shift
        table[name][2 * k + 1] -= shift

    sim = BatchedStatevectorSimulator(circuit.num_qubits, batch)
    sim.run(circuit, table)
    energies = sim.expectations(hamiltonian)
    grad = 0.5 * (energies[0::2] - energies[1::2]) * coeffs
    grad[coeffs == 0] = 0.0
    return grad
