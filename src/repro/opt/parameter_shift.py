"""Parameter-shift gradients for circuit-mode VQE.

For a rotation gate exp(-i theta G / 2) whose generator G squares to
the identity (RX/RY/RZ/RZZ/RXX/RYY; the phase gate reduces to RZ up to
a global phase), the exact derivative is

    dE/dtheta = [E(theta + pi/2) - E(theta - pi/2)] / 2.

This is the gradient a *hardware* backend can evaluate — no state
access needed — and complements the simulator-only adjoint gradients
of ``repro.opt.gradient``.  The rule requires each named parameter to
appear in exactly one eligible rotation; ansatze like
``repro.ir.library.hardware_efficient_ansatz`` satisfy this by
construction, while trotterized UCCSD (one parameter feeding many
rotations) does not — those use the adjoint path.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.ir.circuit import Circuit
from repro.ir.gates import Parameter
from repro.ir.pauli import PauliSum

__all__ = [
    "parameter_shift_gradient",
    "supports_parameter_shift",
    "batched_parameter_shift_gradient",
]

_SHIFT_GATES = {"rx", "ry", "rz", "p", "rzz", "rxx", "ryy"}


def _parameter_occurrences(circuit: Circuit) -> Dict[str, List[Parameter]]:
    occ: Dict[str, List[Parameter]] = {}
    for g in circuit.gates:
        for p in g.params:
            if isinstance(p, Parameter):
                if g.name not in _SHIFT_GATES:
                    occ.setdefault(p.name, []).append(None)  # ineligible
                else:
                    occ.setdefault(p.name, []).append(p)
    return occ


def supports_parameter_shift(circuit: Circuit) -> bool:
    """True if every parameter appears exactly once, in a gate the
    two-term shift rule covers."""
    occ = _parameter_occurrences(circuit)
    return all(len(v) == 1 and v[0] is not None for v in occ.values())


def parameter_shift_gradient(
    circuit: Circuit,
    hamiltonian: PauliSum,
    params: np.ndarray,
    estimate: Optional[Callable[[Circuit, PauliSum], float]] = None,
) -> np.ndarray:
    """Exact gradient via two energy evaluations per parameter.

    ``estimate`` defaults to the direct estimator; pass a sampling
    estimator's ``estimate`` method for the hardware-faithful variant.
    """
    if not supports_parameter_shift(circuit):
        raise ValueError(
            "parameter-shift rule requires each parameter in exactly one "
            "RX/RY/RZ/P/RZZ/RXX/RYY gate; use adjoint gradients for "
            "product-of-exponential ansatze"
        )
    names = circuit.parameters
    params = np.asarray(params, dtype=float)
    if params.shape != (len(names),):
        raise ValueError(f"expected {len(names)} parameters")
    occ = _parameter_occurrences(circuit)

    if estimate is None:
        return _plan_parameter_shift_gradient(circuit, hamiltonian, params, occ)

    # custom estimate callables (e.g. a sampling estimator's bound
    # method) take bound circuits; keep the faithful per-evaluation path
    values = dict(zip(names, params))
    grad = np.zeros(len(names))
    for k, name in enumerate(names):
        (pref,) = occ[name]
        # gate angle = coeff * p + offset; shifting the *gate angle* by
        # +/- pi/2 means shifting p by +/- pi / (2 coeff).
        if pref.coeff == 0:
            continue
        shift = math.pi / (2.0 * pref.coeff)
        up = dict(values)
        up[name] = values[name] + shift
        down = dict(values)
        down[name] = values[name] - shift
        e_up = estimate(circuit.bind(up), hamiltonian)
        e_down = estimate(circuit.bind(down), hamiltonian)
        # d(angle)/dp = coeff; chain rule restores it.
        grad[k] = 0.5 * (e_up - e_down) * pref.coeff
    return grad


def _apply_resolved_inverse(state, kind, payload, qubits, n) -> None:
    """Apply the inverse of a resolved plan op in place (all plan ops
    are unitary: diagonals conjugate, dense blocks conjugate-transpose)."""
    from repro.sim import kernels

    if kind == "x":
        kernels.apply_x(state, qubits[0], n)
    elif kind == "cx":
        kernels.apply_cx(state, qubits[0], qubits[1], n)
    elif kind == "diag1":
        kernels.apply_diag_1q(
            state, payload[0].conjugate(), payload[1].conjugate(), qubits[0], n
        )
    elif kind == "diag2":
        kernels.apply_diag_2q(
            state, [d.conjugate() for d in payload], qubits[0], qubits[1], n
        )
    elif kind == "diag_full":
        state *= payload.conj()
    else:  # dense
        m = np.asarray(payload).conj().T
        if len(qubits) == 1:
            kernels.apply_1q(state, m, qubits[0], n)
        elif len(qubits) == 2:
            kernels.apply_2q(state, m, qubits[0], qubits[1], n)
        else:
            kernels.apply_kq_dense(state, m, qubits, n)


# Diagonal derivative factors d(U)/d(theta) for the diagonal rotation
# gates; dense gates build -i/2 * G @ U from the generator below.
_DIAG_GENERATORS = {
    "rz": lambda th: (
        -0.5j * complex(math.cos(th / 2), -math.sin(th / 2)),
        0.5j * complex(math.cos(th / 2), math.sin(th / 2)),
    ),
    "p": lambda th: (0.0j, 1j * complex(math.cos(th), math.sin(th))),
    "rzz": lambda th: (
        -0.5j * complex(math.cos(th / 2), -math.sin(th / 2)),
        0.5j * complex(math.cos(th / 2), math.sin(th / 2)),
        0.5j * complex(math.cos(th / 2), math.sin(th / 2)),
        -0.5j * complex(math.cos(th / 2), -math.sin(th / 2)),
    ),
}

_XX = np.fliplr(np.eye(4)).astype(np.complex128)
_YY = np.array(
    [[0, 0, 0, -1], [0, 0, 1, 0], [0, 1, 0, 0], [-1, 0, 0, 0]],
    dtype=np.complex128,
)


def _du_bracket(lam, phi, name, theta, qubits, n) -> complex:
    """<lam| dU/dtheta |phi> evaluated on the op's index tables only."""
    from repro.ir.gates import GATE_SET
    from repro.utils.bitops import indices_1q, indices_2q

    diag = _DIAG_GENERATORS.get(name)
    if diag is not None:
        d = diag(theta)
        if len(d) == 2:
            i0, i1 = indices_1q(n, qubits[0])
            return d[0] * np.vdot(lam[i0], phi[i0]) + d[1] * np.vdot(
                lam[i1], phi[i1]
            )
        tables = indices_2q(n, qubits[0], qubits[1])
        return sum(
            d[s] * np.vdot(lam[tables[s]], phi[tables[s]]) for s in range(4)
        )
    if name in ("rx", "ry"):
        ch = 0.5 * math.cos(theta / 2)
        sh = 0.5 * math.sin(theta / 2)
        if name == "rx":
            du = np.array([[-sh, -1j * ch], [-1j * ch, -sh]])
        else:
            du = np.array([[-sh, -ch], [ch, -sh]])
        i0, i1 = indices_1q(n, qubits[0])
        return np.vdot(lam[i0], du[0, 0] * phi[i0] + du[0, 1] * phi[i1]) + np.vdot(
            lam[i1], du[1, 0] * phi[i0] + du[1, 1] * phi[i1]
        )
    # rxx / ryy: dU = -i/2 * G @ U with G the two-qubit Pauli generator
    g = _XX if name == "rxx" else _YY
    du = -0.5j * (g @ GATE_SET[name][2](theta))
    tables = indices_2q(n, qubits[0], qubits[1])
    amps = [phi[t] for t in tables]
    total = 0.0j
    for row in range(4):
        total += np.vdot(
            lam[tables[row]],
            sum(du[row, col] * amps[col] for col in range(4)),
        )
    return total


def _plan_parameter_shift_gradient(
    circuit: Circuit,
    hamiltonian: PauliSum,
    params: np.ndarray,
    occ: Dict[str, List[Parameter]],
) -> np.ndarray:
    """The simulator fast path: reverse-mode evaluation of the shift
    derivatives on the compiled plan.

    For the gates the shift rule covers, the two-term formula *is* the
    analytic derivative, so the whole gradient can be read off one
    forward pass, one ``H|psi>`` application, and one backward sweep
    undoing ops pairwise on ``|phi>`` and ``|lambda> = H|psi>`` — the
    classic adjoint trick, here running on prepacked plan ops instead
    of ``Gate`` objects.  Cost is ~3 plan executions plus one observable
    apply, independent of parameter count, versus the naive ``2 m``
    bound circuit runs and ``2 m`` expectations.  Identical values to
    the two-term formula to machine precision.
    """
    from repro import obs
    from repro.ir.compiled import compile_observable
    from repro.sim.plan import compile_circuit

    names = circuit.parameters
    plan = compile_circuit(circuit)
    n = plan.num_qubits
    psi = np.zeros(plan.dim, dtype=np.complex128)
    psi[0] = 1.0
    plan.execute_slice(psi, params, 0)
    lam = compile_observable(hamiltonian).apply(psi)
    phi = psi  # backward sweep updates the forward buffer in place
    grad = np.zeros(len(names))
    for op in reversed(plan.ops):
        kind, payload = op.resolve(params)
        _apply_resolved_inverse(phi, kind, payload, op.qubits, n)
        if op.is_parametric:
            _, coeff, k, offset = op.param_refs[0]
            if coeff != 0.0:
                theta = coeff * params[k] + offset
                grad[k] += (
                    2.0
                    * coeff
                    * _du_bracket(
                        lam, phi, op.gate_name, theta, op.qubits, n
                    ).real
                )
        _apply_resolved_inverse(lam, kind, payload, op.qubits, n)
    if obs.enabled():
        obs.inc(
            "repro_plan_adjoint_gradients_total",
            help="Plan-based reverse-mode parameter-shift gradients",
        )
    return grad


def _prefix_parameter_shift_gradient(
    circuit: Circuit,
    hamiltonian: PauliSum,
    params: np.ndarray,
    occ: Dict[str, List[Parameter]],
) -> np.ndarray:
    """Shifted-evaluation path with explicit prefix reuse (the middle
    rung the benchmark measures between naive bind+run and the
    reverse-mode sweep).

    Each shift-eligible parameter appears in exactly one gate, so the
    shifted evaluations for parameter k share the op prefix up to that
    gate with the unshifted circuit.  A base state is advanced through
    the plan once (op position ``first_use[k]`` per parameter, ascending
    by construction of ``Circuit.parameters``), and every shifted
    evaluation copies the base prefix and replays only the suffix —
    ~m * G kernel ops total instead of the naive 2 m G.
    """
    from repro import obs
    from repro.sim.expectation import expectation_direct
    from repro.sim.plan import compile_circuit

    names = circuit.parameters
    plan = compile_circuit(circuit)
    base = np.zeros(plan.dim, dtype=np.complex128)
    base[0] = 1.0
    work = np.empty_like(base)
    pos = 0
    skipped = 0
    grad = np.zeros(len(names))
    for k, name in enumerate(names):
        (pref,) = occ[name]
        if pref.coeff == 0:
            continue
        fk = plan.first_use[k]
        plan.execute_slice(base, params, pos, fk)
        pos = fk
        shift = math.pi / (2.0 * pref.coeff)
        energies = []
        for sign in (1.0, -1.0):
            shifted = params.copy()
            shifted[k] += sign * shift
            work[:] = base
            plan.execute_slice(work, shifted, fk)
            energies.append(expectation_direct(work, hamiltonian))
            skipped += fk
        grad[k] = 0.5 * (energies[0] - energies[1]) * pref.coeff
    if skipped and obs.enabled():
        obs.inc(
            "repro_plan_prefix_resumes_total",
            2 * len(names),
            help="Plan executions resumed from a parked prefix state",
        )
        obs.inc(
            "repro_plan_prefix_ops_skipped_total",
            skipped,
            help="Kernel ops skipped via prefix-state reuse",
            labels={"engine": "circuit"},
        )
    return grad


def batched_parameter_shift_gradient(
    circuit: Circuit,
    hamiltonian: PauliSum,
    params: np.ndarray,
) -> np.ndarray:
    """Parameter-shift gradient with all 2m shifted evaluations run as
    ONE batched simulation (paper §6.2 batch execution, applied to the
    gradient workload).

    Numerically identical to :func:`parameter_shift_gradient`; the
    benchmark suite measures the batching speedup.
    """
    from repro.sim.batched import BatchedStatevectorSimulator
    from repro.sim.plan import compile_circuit

    if not supports_parameter_shift(circuit):
        raise ValueError(
            "parameter-shift rule requires each parameter in exactly one "
            "RX/RY/RZ/P/RZZ/RXX/RYY gate"
        )
    names = circuit.parameters
    params = np.asarray(params, dtype=float)
    if params.shape != (len(names),):
        raise ValueError(f"expected {len(names)} parameters")
    occ = _parameter_occurrences(circuit)

    m = len(names)
    batch = 2 * m
    rows = np.tile(params, (batch, 1))
    coeffs = np.zeros(m)
    for k, name in enumerate(names):
        (pref,) = occ[name]
        coeffs[k] = pref.coeff
        if pref.coeff == 0:
            continue
        shift = math.pi / (2.0 * pref.coeff)
        rows[2 * k, k] += shift
        rows[2 * k + 1, k] -= shift

    # the same compiled plan the scalar paths share (memoized on the
    # circuit): static segments pre-fused, diagonals pre-folded
    plan = compile_circuit(circuit)
    sim = BatchedStatevectorSimulator(circuit.num_qubits, batch)
    sim.run_plan(plan, rows)
    energies = sim.expectations(hamiltonian)
    grad = 0.5 * (energies[0::2] - energies[1::2]) * coeffs
    grad[coeffs == 0] = 0.0
    return grad
