"""Adapters exposing SciPy minimizers through the Optimizer interface.

COBYLA and (L-)BFGS are the optimizers the XACC VQE workflow typically
drives; wrapping them keeps the driver code backend-agnostic while the
self-contained optimizers (Nelder–Mead, SPSA, Adam) remain available
where SciPy's are unsuitable.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np
from scipy.optimize import minimize as scipy_minimize

from repro.opt.base import OptimizeResult, Optimizer

__all__ = ["ScipyOptimizer", "Cobyla", "LBFGSB", "BFGS"]


class ScipyOptimizer(Optimizer):
    """Generic adapter around ``scipy.optimize.minimize``."""

    def __init__(self, method: str, max_iterations: int = 1000, tol: float = 1e-9, **options):
        self.method = method
        self.max_iterations = max_iterations
        self.tol = tol
        self.options = options

    def minimize(
        self,
        fun: Callable[[np.ndarray], float],
        x0: np.ndarray,
        gradient: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> OptimizeResult:
        history: List[float] = []

        def wrapped(x: np.ndarray) -> float:
            val = float(fun(x))
            history.append(val)
            return val

        options = dict(self.options)
        options.setdefault("maxiter", self.max_iterations)
        uses_grad = self.method.lower() in ("bfgs", "l-bfgs-b", "cg", "slsqp")
        res = scipy_minimize(
            wrapped,
            np.asarray(x0, dtype=float),
            jac=gradient if (gradient is not None and uses_grad) else None,
            method=self.method,
            tol=self.tol,
            options=options,
        )
        return OptimizeResult(
            x=np.asarray(res.x),
            fun=float(res.fun),
            nfev=int(res.nfev),
            nit=int(getattr(res, "nit", len(history))),
            converged=bool(res.success),
            history=history,
        )


class Cobyla(ScipyOptimizer):
    """COBYLA — the gradient-free default of many VQE stacks."""

    def __init__(self, max_iterations: int = 2000, rhobeg: float = 0.5, tol: float = 1e-9):
        super().__init__("COBYLA", max_iterations=max_iterations, tol=tol, rhobeg=rhobeg)


class LBFGSB(ScipyOptimizer):
    """L-BFGS-B with analytic gradients — fastest converger on
    noiseless (direct-expectation) energy surfaces."""

    def __init__(self, max_iterations: int = 1000, tol: float = 1e-10):
        super().__init__("L-BFGS-B", max_iterations=max_iterations, tol=tol)


class BFGS(ScipyOptimizer):
    def __init__(self, max_iterations: int = 1000, tol: float = 1e-10):
        super().__init__("BFGS", max_iterations=max_iterations, tol=tol)
