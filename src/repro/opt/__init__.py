"""Classical optimizers and gradients for the VQE loop."""

from repro.opt.adam import Adam, GradientDescent
from repro.opt.base import OptimizeResult, Optimizer
from repro.opt.gradient import AnsatzObjective, finite_difference_gradient
from repro.opt.nelder_mead import NelderMead
from repro.opt.parameter_shift import (
    batched_parameter_shift_gradient,
    parameter_shift_gradient,
    supports_parameter_shift,
)
from repro.opt.scipy_wrap import BFGS, Cobyla, LBFGSB, ScipyOptimizer
from repro.opt.spsa import SPSA

__all__ = [
    "Optimizer",
    "OptimizeResult",
    "NelderMead",
    "SPSA",
    "Adam",
    "GradientDescent",
    "ScipyOptimizer",
    "Cobyla",
    "LBFGSB",
    "BFGS",
    "AnsatzObjective",
    "finite_difference_gradient",
    "parameter_shift_gradient",
    "batched_parameter_shift_gradient",
    "supports_parameter_shift",
]
