"""Adam and plain gradient descent on analytic VQE gradients."""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.opt.base import OptimizeResult, Optimizer

__all__ = ["Adam", "GradientDescent"]


class Adam(Optimizer):
    """Adam (Kingma & Ba) with gradient-norm stopping.

    Requires an analytic gradient callback — the VQE driver provides
    adjoint-mode or parameter-shift gradients (``repro.opt.gradient``).
    """

    def __init__(
        self,
        max_iterations: int = 500,
        learning_rate: float = 0.05,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        gtol: float = 1e-7,
    ):
        self.max_iterations = max_iterations
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.gtol = gtol

    def minimize(
        self,
        fun: Callable[[np.ndarray], float],
        x0: np.ndarray,
        gradient: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> OptimizeResult:
        if gradient is None:
            raise ValueError("Adam requires a gradient callback")
        x = np.asarray(x0, dtype=float).copy()
        m = np.zeros_like(x)
        v = np.zeros_like(x)
        nfev = 0
        history: List[float] = []
        converged = False
        it = 0
        for it in range(1, self.max_iterations + 1):
            g = np.asarray(gradient(x))
            nfev += 1
            if np.linalg.norm(g) < self.gtol:
                converged = True
                break
            m = self.beta1 * m + (1 - self.beta1) * g
            v = self.beta2 * v + (1 - self.beta2) * g * g
            mhat = m / (1 - self.beta1 ** it)
            vhat = v / (1 - self.beta2 ** it)
            x = x - self.learning_rate * mhat / (np.sqrt(vhat) + self.eps)
            history.append(float(fun(x)))
            nfev += 1
        return OptimizeResult(
            x=x,
            fun=float(fun(x)),
            nfev=nfev + 1,
            nit=it,
            converged=converged,
            history=history,
        )


class GradientDescent(Optimizer):
    """Plain gradient descent with fixed step (teaching baseline)."""

    def __init__(
        self,
        max_iterations: int = 1000,
        learning_rate: float = 0.1,
        gtol: float = 1e-7,
    ):
        self.max_iterations = max_iterations
        self.learning_rate = learning_rate
        self.gtol = gtol

    def minimize(
        self,
        fun: Callable[[np.ndarray], float],
        x0: np.ndarray,
        gradient: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> OptimizeResult:
        if gradient is None:
            raise ValueError("GradientDescent requires a gradient callback")
        x = np.asarray(x0, dtype=float).copy()
        nfev = 0
        history: List[float] = []
        converged = False
        it = 0
        for it in range(1, self.max_iterations + 1):
            g = np.asarray(gradient(x))
            nfev += 1
            if np.linalg.norm(g) < self.gtol:
                converged = True
                break
            x = x - self.learning_rate * g
            history.append(float(fun(x)))
            nfev += 1
        return OptimizeResult(
            x=x,
            fun=float(fun(x)),
            nfev=nfev + 1,
            nit=it,
            converged=converged,
            history=history,
        )
