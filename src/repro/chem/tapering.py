"""Z2 symmetry finding and qubit tapering (Bravyi et al. style).

A Pauli-Z string ``tau = Z^s`` is a Z2 symmetry of a Hamiltonian ``H``
when it commutes with every term, i.e. ``|x_t & s|`` is even for every
term x-mask — so the independent Z-type symmetries are exactly the
GF(2) kernel of H's stacked X-block (one vectorized
:func:`repro.ir.symplectic.gf2_kernel` call).  Molecular Hamiltonians
under Jordan–Wigner always carry the two spin-sector particle parities,
and point-group symmetry of the integrals contributes more: the repo's
full-space LiH (12q) and H2O (14q) Hamiltonians each have four.

Tapering removes one qubit per symmetry.  Reducing the symmetry set to
GF(2) RREF gives each generator ``tau_i = Z^{s_i}`` an exclusive pivot
qubit ``q_i`` (set in ``s_i`` only); the Hermitian Clifford

    U_i = (X_{q_i} + Z^{s_i}) / sqrt(2)

maps ``tau_i -> X_{q_i}`` while fixing every other generator.  After
conjugating by all ``U_i``, every Hamiltonian term acts on each pivot
qubit with I or X only, so ``X_{q_i}`` can be replaced by its
eigenvalue ``sigma_i = +/-1`` (the symmetry sector) and the qubit
deleted.  The sector of the physical ground state is read off the
Hartree–Fock occupation: ``sigma_i = (-1)^{|s_i & hf_index|}``, and the
tapered reference state is the HF bitstring with the pivot bits
removed.

Conjugation of a Pauli term ``P`` by ``U = (A + B)/sqrt(2)`` with
``A = X_{q_i}``, ``B = Z^{s_i}`` (A, B anticommuting involutions)
follows the four-case table

    commutes with A and B      ->  P
    anticommutes with A only   ->  A B P
    anticommutes with B only   -> -A B P
    anticommutes with both     -> -P

evaluated here as vectorized bit arithmetic over the packed symplectic
form.  Hamiltonian terms always commute with B (B is a symmetry), so
only the first two cases fire for H; operators that do not respect a
symmetry (e.g. individual ADAPT pool generators) hit the other cases
and end up with Z support on a pivot qubit — ``strict=False`` drops
such terms, which is the standard pool-screening treatment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.ir.pauli import PauliSum
from repro.ir.symplectic import (
    SymplecticPauli,
    gf2_kernel,
    gf2_rref,
    pack_masks,
    pauli_mul_batch,
    popcount_words,
    unpack_masks,
)

__all__ = [
    "TaperingError",
    "TaperResult",
    "find_z2_symmetries",
    "sector_from_reference",
    "taper_hamiltonian",
]


class TaperingError(ValueError):
    """Raised when an operator cannot be tapered in strict mode."""


def find_z2_symmetries(hamiltonian: PauliSum) -> List[int]:
    """Independent Z-type Z2 symmetries of ``hamiltonian``.

    Returns the z-masks ``s`` of generators ``Z^s``, in GF(2) RREF so
    each generator owns an exclusive pivot bit.  Empty list when the
    Hamiltonian has no Z-type symmetry.
    """
    n = hamiltonian.num_qubits
    symp = hamiltonian.to_symplectic()
    if symp.num_terms == 0:
        return []
    xs = np.unique(symp.x, axis=0)
    kernel = gf2_kernel(xs, n)
    if kernel.shape[0] == 0:
        return []
    reduced, _ = gf2_rref(kernel, n)
    return [s for s in unpack_masks(reduced) if s != 0]


def sector_from_reference(symmetries: List[int], reference_index: int) -> List[int]:
    """Symmetry eigenvalues (+1/-1) of the computational-basis state
    ``|reference_index>`` — e.g. the Hartree–Fock bitstring."""
    return [
        1 - 2 * (bin(s & reference_index).count("1") & 1) for s in symmetries
    ]


def _compress_masks(
    x: np.ndarray, z: np.ndarray, keep: List[int], num_qubits: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Delete the non-kept qubit columns from packed (T, W) mask pairs,
    renumbering kept qubit ``keep[j]`` to position ``j``."""
    new_n = max(1, len(keep))
    new_w = (new_n + 63) // 64
    t = x.shape[0]
    ox = np.zeros((t, new_w), dtype=np.uint64)
    oz = np.zeros((t, new_w), dtype=np.uint64)
    one = np.uint64(1)
    for j, b in enumerate(keep):
        sw, sb = divmod(b, 64)
        dw, db = divmod(j, 64)
        ox[:, dw] |= ((x[:, sw] >> np.uint64(sb)) & one) << np.uint64(db)
        oz[:, dw] |= ((z[:, sw] >> np.uint64(sb)) & one) << np.uint64(db)
    return ox, oz


@dataclass
class TaperResult:
    """Outcome of tapering: the reduced Hamiltonian plus everything
    needed to taper further operators and reference states into the
    same symmetry sector."""

    num_qubits: int
    symmetries: List[int]
    pivot_qubits: List[int]
    sector: List[int]
    hamiltonian: PauliSum
    kept_qubits: List[int] = field(default_factory=list)

    @property
    def tapered_num_qubits(self) -> int:
        return self.hamiltonian.num_qubits

    @property
    def qubits_removed(self) -> int:
        return self.num_qubits - self.tapered_num_qubits

    # -- operator tapering ---------------------------------------------------

    def _conjugated(self, op: PauliSum) -> SymplecticPauli:
        """``U_k ... U_1 op U_1 ... U_k`` in packed form."""
        symp = op.to_symplectic()
        x, z, c = symp.x.copy(), symp.z.copy(), symp.coeffs.copy()
        for s_mask, q in zip(self.symmetries, self.pivot_qubits):
            s_packed = pack_masks([s_mask], self.num_qubits)[0]
            qw, qb = divmod(q, 64)
            anti_a = ((z[:, qw] >> np.uint64(qb)) & np.uint64(1)).astype(bool)
            anti_b = (popcount_words(x & s_packed[None, :]) & 1).astype(bool)
            # anticommutes with exactly one of A, B -> multiply by A B,
            # with a minus sign for the B-only case; both -> just -P.
            c = np.where(anti_a ^ anti_b, c, np.where(anti_a & anti_b, -c, c))
            rows = np.flatnonzero(anti_a ^ anti_b)
            if rows.size:
                sign = np.where(anti_a[rows], 1.0, -1.0)
                # A B = X_q Z^s = -i P(e_q, s) in the Hermitian convention.
                ab_x = np.zeros((1, x.shape[1]), dtype=np.uint64)
                ab_x[0, qw] = np.uint64(1 << qb)
                ab_z = s_packed[None, :].copy()
                nx, nz, nc = pauli_mul_batch(
                    ab_x,
                    ab_z,
                    np.array([-1j]),
                    x[rows],
                    z[rows],
                    c[rows] * sign,
                )
                x[rows], z[rows], c[rows] = nx, nz, nc
        return SymplecticPauli(self.num_qubits, x, z, c)

    def taper_operator(self, op: PauliSum, strict: bool = True) -> PauliSum:
        """Taper ``op`` into the stored sector.

        Terms that do not commute with every symmetry survive
        conjugation with Z support on a pivot qubit and cannot be
        projected; ``strict=True`` raises :class:`TaperingError`,
        ``strict=False`` drops them (pool-screening semantics).
        """
        if op.num_qubits != self.num_qubits:
            raise ValueError("qubit count mismatch")
        conj = self._conjugated(op)
        x, z, c = conj.x, conj.z, conj.coeffs
        # Z support on any pivot qubit => term broke a symmetry.
        bad = np.zeros(x.shape[0], dtype=bool)
        sign = np.ones(x.shape[0])
        for s_i, q in zip(self.sector, self.pivot_qubits):
            qw, qb = divmod(q, 64)
            zbit = (z[:, qw] >> np.uint64(qb)) & np.uint64(1)
            xbit = (x[:, qw] >> np.uint64(qb)) & np.uint64(1)
            bad |= zbit.astype(bool)
            if s_i < 0:
                sign = np.where(xbit.astype(bool), -sign, sign)
        if bad.any():
            if strict:
                raise TaperingError(
                    f"{int(bad.sum())} term(s) do not commute with the "
                    "Z2 symmetries; re-run with strict=False to drop them"
                )
            keep_rows = ~bad
            x, z, c, sign = x[keep_rows], z[keep_rows], c[keep_rows], sign[keep_rows]
        ox, oz = _compress_masks(x, z, self.kept_qubits, self.num_qubits)
        new_n = max(1, len(self.kept_qubits))
        reduced = SymplecticPauli(new_n, ox, oz, c * sign).dedup(threshold=0.0)
        return PauliSum(new_n, reduced.to_terms_dict())

    def taper_index(self, index: int) -> int:
        """Project a computational-basis index (e.g. the HF bitstring)
        onto the kept qubits."""
        out = 0
        for j, b in enumerate(self.kept_qubits):
            out |= ((index >> b) & 1) << j
        return out

    def describe(self) -> str:
        gens = ", ".join(
            f"Z^{s:0{self.num_qubits}b}(q{q}:{'+' if v > 0 else '-'})"
            for s, q, v in zip(self.symmetries, self.pivot_qubits, self.sector)
        )
        return (
            f"{self.num_qubits}q -> {self.tapered_num_qubits}q "
            f"[{len(self.symmetries)} Z2 symmetries: {gens}]"
        )


def taper_hamiltonian(
    hamiltonian: PauliSum,
    reference_index: Optional[int] = None,
    sector: Optional[List[int]] = None,
    symmetries: Optional[List[int]] = None,
) -> TaperResult:
    """Find (or accept) Z2 symmetries and taper ``hamiltonian``.

    The sector comes from ``sector`` when given, else from the
    computational-basis ``reference_index`` (use the Hartree–Fock
    bitstring for ground-state work), else defaults to all ``+1``.
    """
    n = hamiltonian.num_qubits
    if symmetries is None:
        symmetries = find_z2_symmetries(hamiltonian)
    else:
        reduced, _ = gf2_rref(pack_masks(symmetries, n), n)
        symmetries = [s for s in unpack_masks(reduced) if s != 0]
    if not symmetries:
        return TaperResult(
            num_qubits=n,
            symmetries=[],
            pivot_qubits=[],
            sector=[],
            hamiltonian=hamiltonian,
            kept_qubits=list(range(n)),
        )
    # RREF pivots are exclusive to their generator: the pivot bit of
    # s_i is clear in every other s_j, which is what lets U_i act on
    # tau_i alone.
    _, pivots = gf2_rref(pack_masks(symmetries, n), n)
    if sector is None:
        if reference_index is not None:
            sector = sector_from_reference(symmetries, reference_index)
        else:
            sector = [1] * len(symmetries)
    if len(sector) != len(symmetries):
        raise ValueError("sector length must match the number of symmetries")
    kept = [q for q in range(n) if q not in set(pivots)]
    result = TaperResult(
        num_qubits=n,
        symmetries=symmetries,
        pivot_qubits=list(pivots),
        sector=[1 if v > 0 else -1 for v in sector],
        hamiltonian=hamiltonian,  # placeholder until tapered below
        kept_qubits=kept,
    )
    result.hamiltonian = result.taper_operator(hamiltonian, strict=True)
    if obs.enabled():
        obs.inc(
            "repro_taper_qubits_removed",
            float(len(pivots)),
            help="Qubits removed by Z2 tapering",
        )
    return result
