"""Reduced density matrices from simulated states.

The 1- and 2-RDMs

    D1[p, q]       = <a+_p a_q>
    D2[p, q, r, s] = <a+_p a+_q a_s a_r>      (matching the g_so index
                                               convention of chem.mo)

are the chemistry-side observables a converged VQE state is *for*:
every one- and two-body property (energies, dipoles, natural
occupations, correlation functions) is a contraction against them.
Computed here by mapping each ladder pair/quadruple through
Jordan–Wigner and taking direct expectations — exact, no sampling.

The energy-reconstruction identity

    E = constant + sum h D1 + 1/2 sum g D2

is the strongest available cross-check of Hamiltonian construction,
mapping, and simulator at once; it is asserted in the tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.chem.fermion import FermionOperator
from repro.chem.hamiltonian import MolecularHamiltonian
from repro.chem.mappings import jordan_wigner

__all__ = [
    "one_rdm",
    "two_rdm",
    "energy_from_rdms",
    "natural_occupations",
]


def one_rdm(state: np.ndarray, num_spin_orbitals: int) -> np.ndarray:
    """<a+_p a_q> over spin orbitals (Hermitian, trace = N)."""
    n = num_spin_orbitals
    if state.shape != (1 << n,):
        raise ValueError("state dimension mismatch")
    d1 = np.zeros((n, n), dtype=np.complex128)
    for p in range(n):
        for q in range(p, n):
            op = jordan_wigner(
                FermionOperator.term([(p, True), (q, False)]), n
            )
            val = op.expectation(state)
            d1[p, q] = val
            if p != q:
                d1[q, p] = val.conjugate()
    return d1


def two_rdm(state: np.ndarray, num_spin_orbitals: int) -> np.ndarray:
    """<a+_p a+_q a_s a_r> (index order matches ``g_so``; exploits the
    antisymmetry D2[p,q,r,s] = -D2[q,p,r,s] = -D2[p,q,s,r] and the
    Hermitian pair symmetry)."""
    n = num_spin_orbitals
    if state.shape != (1 << n,):
        raise ValueError("state dimension mismatch")
    d2 = np.zeros((n, n, n, n), dtype=np.complex128)
    for p in range(n):
        for q in range(p + 1, n):
            for r in range(n):
                for s in range(r + 1, n):
                    if (p, q) > (r, s):
                        continue  # fill by Hermiticity below
                    op = jordan_wigner(
                        FermionOperator.term(
                            [(p, True), (q, True), (s, False), (r, False)]
                        ),
                        n,
                    )
                    val = op.expectation(state)
                    for (a, b), sgn1 in (((p, q), 1.0), ((q, p), -1.0)):
                        for (c, d), sgn2 in (((r, s), 1.0), ((s, r), -1.0)):
                            d2[a, b, c, d] = sgn1 * sgn2 * val
                            # Hermitian partner: <a+_c a+_d a_b a_a>* ...
                            d2[c, d, a, b] = (
                                sgn1 * sgn2 * val.conjugate()
                            )
    return d2


def energy_from_rdms(
    hamiltonian: MolecularHamiltonian,
    d1: np.ndarray,
    d2: np.ndarray,
) -> float:
    """E = constant + sum h_so D1 + 1/2 sum g_so D2."""
    h_so, g_so = hamiltonian.spin_orbital_tensors()
    e = hamiltonian.constant
    e += float(np.real(np.einsum("pq,pq->", h_so, d1)))
    e += 0.5 * float(np.real(np.einsum("pqrs,pqrs->", g_so, d2)))
    return e


def natural_occupations(d1: np.ndarray) -> np.ndarray:
    """Eigenvalues of the 1-RDM, descending — the (spin-orbital)
    natural occupation numbers of the correlated state."""
    vals = np.linalg.eigvalsh(d1)
    return vals[::-1].real
