"""Molecular properties from the SCF solution.

Currently: the electric dipole moment — nuclear contribution plus the
trace of the density against the dipole integral matrices.  Serves as
an end-to-end observable check of the integral engine beyond energies.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.chem.integrals import dipole_matrices
from repro.chem.scf import SCFResult

__all__ = ["dipole_moment", "AU_TO_DEBYE"]

AU_TO_DEBYE = 2.541746473


def dipole_moment(
    scf: SCFResult, origin: Sequence[float] = (0.0, 0.0, 0.0)
) -> Tuple[np.ndarray, float]:
    """RHF electric dipole.

    Returns ``(vector_au, magnitude_au)``; multiply by
    :data:`AU_TO_DEBYE` for Debye.  For neutral molecules the result is
    origin-independent (tested).
    """
    origin = np.asarray(origin, dtype=float)
    n_occ = scf.num_occupied
    dm = 2.0 * scf.mo_coeff[:, :n_occ] @ scf.mo_coeff[:, :n_occ].T
    mats = dipole_matrices(scf.basis, origin)
    electronic = -np.array(
        [np.einsum("pq,pq->", dm, mats[d]) for d in range(3)]
    )
    nuclear = np.zeros(3)
    for atom in scf.molecule.atoms:
        nuclear += atom.atomic_number * (np.asarray(atom.position) - origin)
    mu = nuclear + electronic
    return mu, float(np.linalg.norm(mu))
