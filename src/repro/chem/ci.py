"""Determinant-basis configuration interaction (Slater–Condon rules).

The qubit-space exact diagonalization in ``repro.chem.fci`` works on
2^n amplitudes — fine for cross-checking small registers, but the
classical electronic-structure reference the paper's workflow leans on
(the NWChem side) diagonalizes in the *determinant* basis, whose
dimension is the binomial count of the particle sector (441 vs 16,384
for frozen-core H2O).  This module is that substrate:

* determinants as occupation bitmasks, enumerated per (N, S_z) sector,
* Hamiltonian matrix elements by the Slater–Condon rules (diagonal,
  single- and double-excitation cases with fermionic phase factors),
* FCI and CISD spaces,
* a self-contained Davidson eigensolver (diagonal preconditioner) for
  the lowest root.

Cross-checked in the tests against the qubit-space diagonalization:
both must give identical FCI energies, and CISD must land between HF
and FCI (variational hierarchy).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.chem.hamiltonian import MolecularHamiltonian

__all__ = [
    "enumerate_determinants",
    "cisd_determinants",
    "build_ci_matrix",
    "davidson",
    "CIResult",
    "run_ci",
]


def _occupied(det: int, n: int) -> List[int]:
    return [p for p in range(n) if (det >> p) & 1]


def _phase_single(det: int, i: int, a: int) -> float:
    """Fermionic phase of a_i -> a_a on |det> (i occupied, a empty):
    (-1)^(number of occupied orbitals strictly between i and a)."""
    lo, hi = (i, a) if i < a else (a, i)
    mask = ((1 << hi) - 1) & ~((1 << (lo + 1)) - 1)
    return -1.0 if bin(det & mask).count("1") % 2 else 1.0


def enumerate_determinants(
    num_spin_orbitals: int,
    num_electrons: int,
    sz: Optional[float] = 0.0,
) -> List[int]:
    """All determinants (occupation bitmasks) of the (N, S_z) sector.

    Interleaved convention: even spin orbitals are alpha.  ``sz=None``
    drops the spin restriction.
    """
    n = num_spin_orbitals
    dets = []
    for occ in combinations(range(n), num_electrons):
        if sz is not None:
            n_a = sum(1 for p in occ if p % 2 == 0)
            n_b = len(occ) - n_a
            if n_a - n_b != int(round(2 * sz)):
                continue
        det = 0
        for p in occ:
            det |= 1 << p
        dets.append(det)
    return sorted(dets)


def cisd_determinants(
    num_spin_orbitals: int, num_electrons: int, sz: Optional[float] = 0.0
) -> List[int]:
    """Reference + all single and double excitations (spin-sector
    restricted) — the CISD space."""
    n = num_spin_orbitals
    ref = (1 << num_electrons) - 1
    occ = list(range(num_electrons))
    virt = list(range(num_electrons, n))
    dets = {ref}
    for i in occ:
        for a in virt:
            if sz is not None and (i - a) % 2 != 0:
                continue
            dets.add(ref ^ (1 << i) ^ (1 << a))
    for i, j in combinations(occ, 2):
        for a, b in combinations(virt, 2):
            if sz is not None and ((i % 2) + (j % 2)) != ((a % 2) + (b % 2)):
                continue
            dets.add(ref ^ (1 << i) ^ (1 << j) ^ (1 << a) ^ (1 << b))
    return sorted(dets)


def _element(
    bra: int,
    ket: int,
    n: int,
    h: np.ndarray,
    g: np.ndarray,
) -> float:
    """<bra|H|ket> by the Slater–Condon rules.  ``g`` is physicists'
    <PQ|RS>; antisymmetrized integrals are formed on the fly."""
    diff = bra ^ ket
    ndiff = bin(diff).count("1")
    if ndiff == 0:
        occ = _occupied(ket, n)
        e = sum(h[p, p] for p in occ)
        for i in occ:
            for j in occ:
                e += 0.5 * (g[i, j, i, j] - g[i, j, j, i])
        return float(e)
    if ndiff == 2:
        i = (diff & ket).bit_length() - 1   # occupied in ket only
        a = (diff & bra).bit_length() - 1   # occupied in bra only
        common = _occupied(ket & bra, n)
        val = h[a, i] + sum(g[a, j, i, j] - g[a, j, j, i] for j in common)
        return float(_phase_single(ket, i, a) * val)
    if ndiff == 4:
        ket_only = _occupied(diff & ket, n)   # i < j annihilated
        bra_only = _occupied(diff & bra, n)   # a < b created
        i, j = ket_only
        a, b = bra_only
        # phase: remove i then j, add b then a, tracking intermediate
        # occupations
        phase = _phase_single(ket, i, a)
        mid = ket ^ (1 << i) ^ (1 << a)
        phase *= _phase_single(mid, j, b)
        val = g[a, b, i, j] - g[a, b, j, i]
        return float(phase * val)
    return 0.0


def build_ci_matrix(
    hamiltonian: MolecularHamiltonian, determinants: Sequence[int]
) -> np.ndarray:
    """Dense CI matrix over the given determinant list (constant
    included on the diagonal)."""
    h_so, g_so = hamiltonian.spin_orbital_tensors()
    n = hamiltonian.num_spin_orbitals
    dim = len(determinants)
    mat = np.zeros((dim, dim))
    for a in range(dim):
        for b in range(a, dim):
            if bin(determinants[a] ^ determinants[b]).count("1") > 4:
                continue
            val = _element(determinants[a], determinants[b], n, h_so, g_so)
            mat[a, b] = mat[b, a] = val
    mat += hamiltonian.constant * np.eye(dim)
    return mat


def davidson(
    matrix: np.ndarray,
    num_roots: int = 1,
    tol: float = 1e-9,
    max_iterations: int = 200,
    max_subspace: int = 40,
) -> Tuple[np.ndarray, np.ndarray]:
    """Davidson eigensolver for the lowest roots of a symmetric matrix.

    Diagonal preconditioner; subspace collapse when it outgrows
    ``max_subspace``.  Returns (eigenvalues, eigenvectors[:, k]).
    Self-contained — no scipy eigensolver underneath — because an HPC
    electronic-structure stack owns its iterative eigensolver.
    """
    dim = matrix.shape[0]
    num_roots = min(num_roots, dim)
    if dim <= max(64, 4 * num_roots):
        vals, vecs = np.linalg.eigh(matrix)
        return vals[:num_roots], vecs[:, :num_roots]
    diag = np.diag(matrix)
    # seed with unit vectors at the smallest diagonal entries
    order = np.argsort(diag)
    basis = np.zeros((dim, num_roots))
    for k in range(num_roots):
        basis[order[k], k] = 1.0
    for _ in range(max_iterations):
        q, _ = np.linalg.qr(basis)
        hq = matrix @ q
        small = q.T @ hq
        s_vals, s_vecs = np.linalg.eigh(small)
        ritz_vals = s_vals[:num_roots]
        ritz_vecs = q @ s_vecs[:, :num_roots]
        residuals = hq @ s_vecs[:, :num_roots] - ritz_vecs * ritz_vals
        norms = np.linalg.norm(residuals, axis=0)
        if np.all(norms < tol):
            return ritz_vals, ritz_vecs
        new_dirs = []
        for k in range(num_roots):
            if norms[k] < tol:
                continue
            denom = diag - ritz_vals[k]
            denom = np.where(np.abs(denom) < 1e-8, 1e-8, denom)
            new_dirs.append(residuals[:, k] / denom)
        basis = np.column_stack([q, *new_dirs])
        if basis.shape[1] > max_subspace:
            basis = ritz_vecs  # collapse
    return ritz_vals, ritz_vecs


@dataclass
class CIResult:
    """Outcome of a determinant-space CI calculation."""

    energy: float
    eigenvector: np.ndarray
    determinants: List[int]
    space: str

    @property
    def dimension(self) -> int:
        return len(self.determinants)


def run_ci(
    hamiltonian: MolecularHamiltonian,
    space: str = "fci",
    sz: Optional[float] = 0.0,
) -> CIResult:
    """Diagonalize in the chosen determinant space: 'fci' or 'cisd'."""
    n = hamiltonian.num_spin_orbitals
    n_e = hamiltonian.num_electrons
    if space == "fci":
        dets = enumerate_determinants(n, n_e, sz)
    elif space == "cisd":
        dets = cisd_determinants(n, n_e, sz)
    else:
        raise ValueError("space must be 'fci' or 'cisd'")
    mat = build_ci_matrix(hamiltonian, dets)
    vals, vecs = davidson(mat, num_roots=1)
    return CIResult(
        energy=float(vals[0]),
        eigenvector=vecs[:, 0],
        determinants=dets,
        space=space,
    )
