"""Lattice-model Hamiltonians: transverse-field Ising, Heisenberg,
Fermi–Hubbard.

The paper's introduction motivates quantum simulation "from quantum
chemistry to materials science"; these standard lattice models are the
materials-science workloads.  Spin models are built directly as Pauli
sums; the Fermi–Hubbard model is built as a ``FermionOperator`` and
mapped through the same Jordan–Wigner machinery as the molecular
Hamiltonians, so the entire VQE/ADAPT/QPE stack applies unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.chem.fermion import FermionOperator
from repro.chem.mappings import jordan_wigner
from repro.ir.pauli import PauliString, PauliSum

__all__ = [
    "transverse_field_ising",
    "heisenberg_xxz",
    "fermi_hubbard",
    "fermi_hubbard_qubit",
]


def _chain_edges(num_sites: int, periodic: bool) -> List[Tuple[int, int]]:
    edges = [(i, i + 1) for i in range(num_sites - 1)]
    if periodic and num_sites > 2:
        edges.append((num_sites - 1, 0))
    return edges


def transverse_field_ising(
    num_sites: int, j: float = 1.0, h: float = 1.0, periodic: bool = False
) -> PauliSum:
    """H = -J sum ZZ - h sum X on a chain."""
    if num_sites < 2:
        raise ValueError("need at least two sites")
    out = PauliSum.zero(num_sites)
    for a, b in _chain_edges(num_sites, periodic):
        out.add_term(PauliString.from_ops(num_sites, {a: "Z", b: "Z"}), -j)
    for q in range(num_sites):
        out.add_term(PauliString.from_ops(num_sites, {q: "X"}), -h)
    return out


def heisenberg_xxz(
    num_sites: int,
    j_xy: float = 1.0,
    j_z: float = 1.0,
    field: float = 0.0,
    periodic: bool = False,
) -> PauliSum:
    """H = sum [ J_xy (XX + YY) + J_z ZZ ] + field * sum Z."""
    if num_sites < 2:
        raise ValueError("need at least two sites")
    out = PauliSum.zero(num_sites)
    for a, b in _chain_edges(num_sites, periodic):
        out.add_term(PauliString.from_ops(num_sites, {a: "X", b: "X"}), j_xy)
        out.add_term(PauliString.from_ops(num_sites, {a: "Y", b: "Y"}), j_xy)
        out.add_term(PauliString.from_ops(num_sites, {a: "Z", b: "Z"}), j_z)
    if field != 0.0:
        for q in range(num_sites):
            out.add_term(PauliString.from_ops(num_sites, {q: "Z"}), field)
    return out


def fermi_hubbard(
    num_sites: int,
    tunneling: float = 1.0,
    interaction: float = 4.0,
    chemical_potential: float = 0.0,
    periodic: bool = False,
) -> FermionOperator:
    """1-D Fermi–Hubbard chain in second quantization.

    Spin orbital ``2 s`` is the up spin of site ``s`` and ``2 s + 1``
    the down spin (the same interleaved convention as the chemistry
    stack):

        H = -t sum_{<rs>, sigma} (a+_{r sigma} a_{s sigma} + h.c.)
            + U sum_r n_{r up} n_{r down}
            - mu sum_{r sigma} n_{r sigma}
    """
    if num_sites < 2:
        raise ValueError("need at least two sites")
    op = FermionOperator()
    for a, b in _chain_edges(num_sites, periodic):
        for sigma in (0, 1):
            p, q = 2 * a + sigma, 2 * b + sigma
            op = op + FermionOperator.term([(p, True), (q, False)], -tunneling)
            op = op + FermionOperator.term([(q, True), (p, False)], -tunneling)
    for r in range(num_sites):
        up, down = 2 * r, 2 * r + 1
        op = op + FermionOperator.term(
            [(up, True), (up, False), (down, True), (down, False)], interaction
        )
        if chemical_potential != 0.0:
            for s in (up, down):
                op = op + FermionOperator.term(
                    [(s, True), (s, False)], -chemical_potential
                )
    return op


def fermi_hubbard_qubit(
    num_sites: int,
    tunneling: float = 1.0,
    interaction: float = 4.0,
    chemical_potential: float = 0.0,
    periodic: bool = False,
    mapping: str = "jordan-wigner",
) -> PauliSum:
    """Qubit form of :func:`fermi_hubbard` (2 qubits per site)."""
    from repro.chem.mappings import map_fermion_operator

    op = fermi_hubbard(
        num_sites, tunneling, interaction, chemical_potential, periodic
    )
    return map_fermion_operator(op, 2 * num_sites, mapping)
