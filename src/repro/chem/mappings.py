"""Fermion-to-qubit mappings: Jordan–Wigner, parity, Bravyi–Kitaev.

All three mappings are instances of one GF(2) linear-encoding scheme
(Seeley–Richard–Love): the stored qubit bits are ``b = beta n mod 2``
for an invertible binary matrix ``beta`` acting on the occupation
vector ``n``.  For a ladder operator on mode ``p`` three index sets
follow from ``beta``:

* update set ``U(p)``  — rows j with beta[j, p] = 1: qubits that flip
  when occupation p flips (an X string),
* parity set ``P(p)``  — qubits whose Z-product gives the parity of
  modes < p (the JW sign factor),
* flip set  ``F(p)``   — qubits whose Z-product gives (-1)^{n_p}
  (the occupation projector).

Then  a+_p = X_U . Z_P . (I + Z_F)/2   and   a_p = X_U . Z_P . (I - Z_F)/2,
with all products carried out exactly in the Pauli algebra of
``repro.ir.pauli`` (phases emerge automatically where X and Z strings
overlap).  Jordan–Wigner is ``beta = I``; parity is the prefix-sum
matrix; Bravyi–Kitaev is the Seeley–Richard–Love block-doubling matrix
(log-depth parity/update sets).
"""

from __future__ import annotations

from typing import Dict, Literal, Tuple

import numpy as np

from repro.chem.fermion import FermionOperator
from repro.ir.pauli import PauliString, PauliSum
from repro.ir.symplectic import SymplecticPauli, pack_masks, pauli_mul_batch

__all__ = [
    "jordan_wigner",
    "parity_transform",
    "bravyi_kitaev",
    "map_fermion_operator",
    "encoding_matrix",
]

MappingName = Literal["jordan-wigner", "parity", "bravyi-kitaev"]

# Below this many fermionic terms the per-term mapping loop is used —
# it is fast enough there and preserves its historical output ordering
# (which seeds the QWC-grouping scan order for small systems).
_BATCH_TERM_CUTOFF = 512


def encoding_matrix(name: str, n: int) -> np.ndarray:
    """The GF(2) matrix beta for a named mapping on n modes."""
    key = name.lower()
    if key in ("jordan-wigner", "jw"):
        return np.eye(n, dtype=np.uint8)
    if key == "parity":
        return np.tril(np.ones((n, n), dtype=np.uint8))
    if key in ("bravyi-kitaev", "bk"):
        size = 1
        beta = np.array([[1]], dtype=np.uint8)
        while size < n:
            top = np.hstack([beta, np.zeros((size, size), dtype=np.uint8)])
            bottom_left = np.zeros((size, size), dtype=np.uint8)
            bottom_left[-1, :] = 1  # last row of the lower-left block is all ones
            bottom = np.hstack([bottom_left, beta])
            beta = np.vstack([top, bottom])
            size *= 2
        return beta[:n, :n]
    raise ValueError(f"unknown mapping {name!r}")


def _gf2_inverse(m: np.ndarray) -> np.ndarray:
    """Inverse of a binary matrix over GF(2) by Gaussian elimination."""
    n = m.shape[0]
    a = m.astype(np.uint8).copy()
    inv = np.eye(n, dtype=np.uint8)
    for col in range(n):
        pivot = next((r for r in range(col, n) if a[r, col]), None)
        if pivot is None:
            raise ValueError("encoding matrix is singular over GF(2)")
        if pivot != col:
            a[[col, pivot]] = a[[pivot, col]]
            inv[[col, pivot]] = inv[[pivot, col]]
        for r in range(n):
            if r != col and a[r, col]:
                a[r] ^= a[col]
                inv[r] ^= inv[col]
    return inv


class _Mapper:
    """Precomputed index sets for one mapping on n modes."""

    def __init__(self, name: str, n: int):
        self.n = n
        beta = encoding_matrix(name, n)
        beta_inv = _gf2_inverse(beta)
        self.update_masks = []
        self.parity_masks = []
        self.flip_masks = []
        for p in range(n):
            u = 0
            for j in range(n):
                if beta[j, p]:
                    u |= 1 << j
            # parity of modes < p: sum_q<p n_q = sum_q<p sum_j beta_inv[q,j] b_j
            col_parity = np.zeros(n, dtype=np.uint8)
            for q in range(p):
                col_parity ^= beta_inv[q]
            pmask = 0
            for j in range(n):
                if col_parity[j]:
                    pmask |= 1 << j
            f = 0
            for j in range(n):
                if beta_inv[p, j]:
                    f |= 1 << j
            self.update_masks.append(u)
            self.parity_masks.append(pmask)
            self.flip_masks.append(f)
        # Packed factor tables for the batched mapping path.  A ladder
        # operator expands into two Hermitian-convention rows:
        #   a(+/-)_p = 0.5 i^{-|U&P|}       P(U, P)
        #            +/- 0.5 i^{-|U&(P^F)|} P(U, P^F)
        # (the i powers convert the literal X^x Z^z products into the
        # P(x, z) = i^{|x&z|} X^x Z^z convention of repro.ir.pauli).
        i_pow = np.array([1.0 + 0j, 1j, -1.0 + 0j, -1j])
        self._fx = pack_masks(self.update_masks, n)
        self._fz0 = pack_masks(self.parity_masks, n)
        self._fz1 = pack_masks(
            [pm ^ fm for pm, fm in zip(self.parity_masks, self.flip_masks)], n
        )
        self._fc0 = np.array(
            [
                0.5 * i_pow[(-bin(u & pm).count("1")) % 4]
                for u, pm in zip(self.update_masks, self.parity_masks)
            ]
        )
        self._fc1 = np.array(
            [
                0.5 * i_pow[(-bin(u & (pm ^ fm)).count("1")) % 4]
                for u, pm, fm in zip(
                    self.update_masks, self.parity_masks, self.flip_masks
                )
            ]
        )

    def ladder(self, p: int, dagger: bool) -> PauliSum:
        """a+_p or a_p as a 2-term PauliSum."""
        n = self.n
        x_u = PauliSum.from_string(PauliString(n, x=self.update_masks[p]))
        z_p = PauliSum.from_string(PauliString(n, z=self.parity_masks[p]))
        z_f = PauliSum.from_string(PauliString(n, z=self.flip_masks[p]))
        sign = 1.0 if dagger else -1.0
        projector = (PauliSum.identity(n) + sign * z_f) * 0.5
        return x_u.dot(z_p).dot(projector)


_MAPPER_CACHE: Dict[Tuple[str, int], _Mapper] = {}


def _get_mapper(name: str, n: int) -> _Mapper:
    key = (name.lower(), n)
    if key not in _MAPPER_CACHE:
        _MAPPER_CACHE[key] = _Mapper(name, n)
    return _MAPPER_CACHE[key]


def map_fermion_operator(
    op: FermionOperator, num_modes: int, mapping: str = "jordan-wigner"
) -> PauliSum:
    """Map a fermionic operator to a qubit operator on ``num_modes`` qubits.

    Large operators take the batched path: fermionic terms are bucketed
    by ladder length ``k`` and each bucket's products expanded
    simultaneously — a (terms, 2^t, words) symplectic batch doubled once
    per ladder factor via :func:`repro.ir.symplectic.pauli_mul_batch`,
    then collapsed with one global dedup — instead of per-term
    ``PauliSum.dot`` chains.  Small operators keep the per-term loop
    (and its output term ordering).
    """
    if op.max_orbital >= num_modes:
        raise ValueError(
            f"operator touches orbital {op.max_orbital} >= num_modes {num_modes}"
        )
    if len(op.terms) <= _BATCH_TERM_CUTOFF:
        return _map_fermion_operator_per_term(op, num_modes, mapping)
    mapper = _get_mapper(mapping, num_modes)
    words = mapper._fx.shape[1]
    identity_coeff = 0.0 + 0j
    buckets: Dict[int, list] = {}
    for term, coeff in op:
        if not term:
            identity_coeff += complex(coeff)
            continue
        buckets.setdefault(len(term), []).append((term, complex(coeff)))

    pieces = []
    if identity_coeff != 0:
        pieces.append(
            (
                np.zeros((1, words), dtype=np.uint64),
                np.zeros((1, words), dtype=np.uint64),
                np.array([identity_coeff]),
            )
        )
    for k, entries in buckets.items():
        m = len(entries)
        # Per-factor choice arrays: (m, k) index tables into the mapper's
        # packed factor rows, plus the dagger sign on the z^F choice.
        orbs = np.array([[orb for orb, _ in term] for term, _ in entries])
        signs = np.array(
            [[1.0 if dag else -1.0 for _, dag in term] for term, _ in entries]
        )
        coeffs = np.array([c for _, c in entries])
        # Running batch product, doubling per ladder factor.
        bx = np.zeros((m, 1, words), dtype=np.uint64)
        bz = np.zeros((m, 1, words), dtype=np.uint64)
        bc = np.ones((m, 1), dtype=np.complex128)
        for t in range(k):
            p = orbs[:, t]
            fx = mapper._fx[p][:, None, :]
            out = []
            for fz, fc in (
                (mapper._fz0[p], mapper._fc0[p]),
                (mapper._fz1[p], mapper._fc1[p] * signs[:, t]),
            ):
                out.append(
                    pauli_mul_batch(
                        bx, bz, bc, fx, fz[:, None, :], fc[:, None]
                    )
                )
            bx = np.concatenate([o[0] for o in out], axis=1)
            bz = np.concatenate([o[1] for o in out], axis=1)
            bc = np.concatenate([o[2] for o in out], axis=1)
        bc = bc * coeffs[:, None]
        pieces.append(
            (
                bx.reshape(-1, words),
                bz.reshape(-1, words),
                bc.reshape(-1),
            )
        )

    if not pieces:
        return PauliSum.zero(num_modes)
    symp = SymplecticPauli(
        num_modes,
        np.concatenate([p[0] for p in pieces], axis=0),
        np.concatenate([p[1] for p in pieces], axis=0),
        np.concatenate([p[2] for p in pieces]),
    ).dedup(threshold=1e-14)
    return PauliSum(num_modes, symp.to_terms_dict())


def _map_fermion_operator_per_term(
    op: FermionOperator, num_modes: int, mapping: str = "jordan-wigner"
) -> PauliSum:
    """Reference per-term mapping loop (baseline for benchmarks)."""
    if op.max_orbital >= num_modes:
        raise ValueError(
            f"operator touches orbital {op.max_orbital} >= num_modes {num_modes}"
        )
    mapper = _get_mapper(mapping, num_modes)
    result = PauliSum.zero(num_modes)
    for term, coeff in op:
        if not term:
            result = result + PauliSum.identity(num_modes, coeff)
            continue
        acc = mapper.ladder(*term[0])
        for orb, dag in term[1:]:
            acc = acc.dot(mapper.ladder(orb, dag))
        result = result + acc * coeff
    return result.chop(1e-14)


def jordan_wigner(op: FermionOperator, num_modes: int) -> PauliSum:
    """Jordan–Wigner transform (the mapping the paper's workflow uses)."""
    return map_fermion_operator(op, num_modes, "jordan-wigner")


def parity_transform(op: FermionOperator, num_modes: int) -> PauliSum:
    """Parity mapping."""
    return map_fermion_operator(op, num_modes, "parity")


def bravyi_kitaev(op: FermionOperator, num_modes: int) -> PauliSum:
    """Bravyi–Kitaev mapping (log-weight strings)."""
    return map_fermion_operator(op, num_modes, "bravyi-kitaev")
