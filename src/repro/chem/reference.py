"""Reference-state preparation circuits.

The Hartree–Fock determinant is the starting point of every VQE run
(paper §3.1 step 1).  Under Jordan–Wigner it is a computational basis
state (X gates on occupied spin orbitals); under parity or
Bravyi–Kitaev the occupation vector is pushed through the encoding
matrix first.
"""

from __future__ import annotations

import numpy as np

from repro.chem.mappings import encoding_matrix
from repro.ir.circuit import Circuit

__all__ = ["hartree_fock_circuit", "hartree_fock_bitstring", "hartree_fock_state"]


def hartree_fock_bitstring(
    num_spin_orbitals: int, num_electrons: int, mapping: str = "jordan-wigner"
) -> int:
    """Encoded basis-state index of the HF determinant."""
    if num_electrons > num_spin_orbitals:
        raise ValueError("more electrons than spin orbitals")
    n = np.zeros(num_spin_orbitals, dtype=np.uint8)
    n[:num_electrons] = 1  # interleaved convention: lowest SOs occupied
    beta = encoding_matrix(mapping, num_spin_orbitals)
    b = (beta @ n) % 2
    index = 0
    for q in range(num_spin_orbitals):
        if b[q]:
            index |= 1 << q
    return index


def hartree_fock_circuit(
    num_spin_orbitals: int, num_electrons: int, mapping: str = "jordan-wigner"
) -> Circuit:
    """X gates preparing the encoded HF determinant from |0...0>."""
    index = hartree_fock_bitstring(num_spin_orbitals, num_electrons, mapping)
    circ = Circuit(num_spin_orbitals)
    for q in range(num_spin_orbitals):
        if (index >> q) & 1:
            circ.x(q)
    return circ


def hartree_fock_state(
    num_spin_orbitals: int, num_electrons: int, mapping: str = "jordan-wigner"
) -> np.ndarray:
    """Dense statevector of the encoded HF determinant."""
    state = np.zeros(1 << num_spin_orbitals, dtype=np.complex128)
    state[hartree_fock_bitstring(num_spin_orbitals, num_electrons, mapping)] = 1.0
    return state
