"""UCCSD ansatz generation and compilation to circuits.

The unitary coupled-cluster singles-and-doubles ansatz

    |psi(theta)> = exp(T(theta) - T(theta)^dag) |HF>

is compiled by first-order Trotterization: each excitation generator
(anti-Hermitian, mapped through Jordan–Wigner to a sum of mutually
commuting Pauli strings) becomes a block of Pauli-exponential
sub-circuits sharing one variational parameter.  Each
``exp(i phi P)`` compiles to the textbook pattern: basis rotations to
Z, a CNOT parity ladder, one RZ(-2 phi), and the mirrored suffix.

This is the circuit family behind Figs. 1a and 4 of the paper (gate
count scaling and fusion savings), so the module also provides
analytic gate/parameter counting that agrees exactly with the built
circuits (cross-validated in tests) and stays cheap at 30+ qubits
where materializing the circuit would be wasteful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.chem.fermion import FermionOperator
from repro.chem.mappings import jordan_wigner
from repro.ir.circuit import Circuit
from repro.ir.gates import Parameter
from repro.ir.pauli import PauliString, PauliSum

__all__ = [
    "uccsd_excitations",
    "excitation_generator",
    "uccsd_generators",
    "pauli_exponential",
    "compile_evolution",
    "build_uccsd_circuit",
    "count_uccsd_gates",
    "UCCSDAnsatz",
]


def uccsd_excitations(
    num_spin_orbitals: int, num_electrons: int, generalized: bool = False
) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int, int, int]]]:
    """Spin-preserving single and double excitations.

    Standard UCCSD (default): excitations from the HF-occupied spin
    orbitals (the lowest ``num_electrons``, interleaved convention)
    into the virtuals.  With ``generalized=True`` the occupied/virtual
    restriction is dropped (UCCGSD): all orbital pairs participate,
    which enlarges the reachable manifold — needed e.g. by VQD excited
    -state searches.

    Returns (singles, doubles): singles as (i, a), doubles as
    (i, j, a, b) with i<j, a<b, total spin projection conserved.
    """
    n = num_spin_orbitals
    if generalized:
        singles = [
            (i, a) for i in range(n) for a in range(i + 1, n) if (i - a) % 2 == 0
        ]
        doubles = []
        for i in range(n):
            for j in range(i + 1, n):
                for a in range(n):
                    for b in range(a + 1, n):
                        if (a, b) <= (i, j):
                            continue  # avoid duplicate/adjoint pairs
                        if {i, j} & {a, b}:
                            continue
                        spin_change = (i % 2) + (j % 2) - (a % 2) - (b % 2)
                        if spin_change == 0:
                            doubles.append((i, j, a, b))
        return singles, doubles
    occ = list(range(num_electrons))
    virt = list(range(num_electrons, num_spin_orbitals))
    singles = [(i, a) for i in occ for a in virt if (i - a) % 2 == 0]
    doubles = []
    for ii, i in enumerate(occ):
        for j in occ[ii + 1:]:
            for ai, a in enumerate(virt):
                for b in virt[ai + 1:]:
                    spin_change = (i % 2) + (j % 2) - (a % 2) - (b % 2)
                    if spin_change == 0:
                        doubles.append((i, j, a, b))
    return singles, doubles


def excitation_generator(excitation: Sequence[int]) -> FermionOperator:
    """Anti-Hermitian generator G = T - T^dag for one excitation."""
    if len(excitation) == 2:
        i, a = excitation
        t = FermionOperator.term([(a, True), (i, False)])
    elif len(excitation) == 4:
        i, j, a, b = excitation
        t = FermionOperator.term([(a, True), (b, True), (j, False), (i, False)])
    else:
        raise ValueError("excitation must have 2 or 4 indices")
    return (t - t.dagger()).normal_ordered()


def uccsd_generators(
    num_spin_orbitals: int, num_electrons: int, generalized: bool = False
) -> List[Tuple[Tuple[int, ...], PauliSum]]:
    """All UCCSD (or UCCGSD with ``generalized=True``) generators
    mapped to qubit operators.

    Each entry is ``(excitation_indices, A)`` with ``A``
    anti-Hermitian; ``exp(theta A)`` is the ansatz factor.
    """
    singles, doubles = uccsd_excitations(
        num_spin_orbitals, num_electrons, generalized
    )
    out = []
    for exc in list(singles) + list(doubles):
        gen = excitation_generator(exc)
        a = jordan_wigner(gen, num_spin_orbitals)
        if a.num_terms:
            out.append((tuple(exc), a))
    return out


def pauli_exponential(
    pauli: PauliString, angle, num_qubits: int
) -> Circuit:
    """Circuit for exp(i * angle * P).

    ``angle`` may be a float or a :class:`Parameter` (affine in the
    variational parameter).  Pattern: rotate X/Y factors to Z, entangle
    the support with a CNOT ladder, RZ(-2 * angle) on the last support
    qubit, then mirror.
    """
    circ = Circuit(num_qubits)
    support = pauli.support
    if not support:
        return circ  # exp(i a I) is a global phase
    for q in support:
        op = pauli.op_on(q)
        if op == "X":
            circ.h(q)
        elif op == "Y":
            # RX(pi/2) conjugation maps Y -> Z.
            circ.rx(np.pi / 2, q)
    for k in range(len(support) - 1):
        circ.cx(support[k], support[k + 1])
    rz_angle = angle * (-2.0) if isinstance(angle, Parameter) else -2.0 * angle
    circ.rz(rz_angle, support[-1])
    for k in range(len(support) - 2, -1, -1):
        circ.cx(support[k], support[k + 1])
    for q in support:
        op = pauli.op_on(q)
        if op == "X":
            circ.h(q)
        elif op == "Y":
            circ.rx(-np.pi / 2, q)
    return circ


def compile_evolution(
    generator: PauliSum, angle, num_qubits: int
) -> Circuit:
    """Compile exp(angle * A) for anti-Hermitian A = sum_k i c_k P_k.

    Writes each term as exp(i (angle * c_k) P_k); for UCCSD generators
    the P_k mutually commute so the product is exact (no Trotter error
    within one excitation block).
    """
    circ = Circuit(num_qubits)
    for coeff, pstr in generator:
        if abs(coeff.real) > 1e-12:
            raise ValueError("generator must be anti-Hermitian (i * real)")
        c = coeff.imag
        if abs(c) < 1e-14:
            continue
        sub_angle = angle * c if isinstance(angle, Parameter) else angle * c
        circ.compose(pauli_exponential(pstr, sub_angle, num_qubits))
    return circ


@dataclass
class UCCSDAnsatz:
    """A built UCCSD ansatz: parameterized circuit + generator list."""

    circuit: Circuit
    generators: List[Tuple[Tuple[int, ...], PauliSum]]
    num_spin_orbitals: int
    num_electrons: int

    @property
    def num_parameters(self) -> int:
        return len(self.generators)

    def parameter_names(self) -> List[str]:
        return [f"t{k}" for k in range(len(self.generators))]


def build_uccsd_circuit(
    num_spin_orbitals: int,
    num_electrons: int,
    include_reference: bool = True,
    trotter_steps: int = 1,
) -> UCCSDAnsatz:
    """The full parameterized UCCSD circuit (JW mapping).

    Parameters are named ``t0 .. t{m-1}``, one per excitation; with
    ``trotter_steps > 1`` each step applies every generator with
    angle theta/steps.
    """
    gens = uccsd_generators(num_spin_orbitals, num_electrons)
    circ = Circuit(num_spin_orbitals)
    if include_reference:
        for q in range(num_electrons):
            circ.x(q)
    for _ in range(trotter_steps):
        for k, (_, a) in enumerate(gens):
            theta = Parameter(f"t{k}", coeff=1.0 / trotter_steps)
            circ.compose(compile_evolution(a, theta, num_spin_orbitals))
    return UCCSDAnsatz(
        circuit=circ,
        generators=gens,
        num_spin_orbitals=num_spin_orbitals,
        num_electrons=num_electrons,
    )


def count_uccsd_gates(
    num_spin_orbitals: int,
    num_electrons: Optional[int] = None,
    include_reference: bool = True,
    trotter_steps: int = 1,
) -> dict:
    """Analytic UCCSD gate count (matches ``build_uccsd_circuit``).

    Cheap at any width — used by the Fig. 1a scaling sweep where the
    30-qubit circuit has millions of gates.  Under JW, a single
    excitation (i -> a) yields 2 Pauli strings of weight (a - i + 1)
    with 2 X/Y factors; a double excitation yields 8 strings with
    4 X/Y factors and Z-ladders over the inner index gaps.  Each
    string of weight w and x/y count m costs 2m basis gates +
    2(w - 1) CNOTs + 1 RZ.
    """
    if num_electrons is None:
        num_electrons = num_spin_orbitals // 2  # half filling
    singles, doubles = uccsd_excitations(num_spin_orbitals, num_electrons)
    gates = num_electrons if include_reference else 0
    two_q = 0
    for i, a in singles:
        w = a - i + 1  # X/Y endpoints + Z chain between
        per_string = 2 * 2 + 2 * (w - 1) + 1
        gates += 2 * per_string * trotter_steps
        two_q += 2 * 2 * (w - 1) * trotter_steps
    for i, j, a, b in doubles:
        # support: {i, j, a, b} + Z chains inside (i, j) and (a, b)
        w = 4 + max(0, j - i - 1) + max(0, b - a - 1)
        per_string = 2 * 4 + 2 * (w - 1) + 1
        gates += 8 * per_string * trotter_steps
        two_q += 8 * 2 * (w - 1) * trotter_steps
    return {
        "num_singles": len(singles),
        "num_doubles": len(doubles),
        "num_parameters": len(singles) + len(doubles),
        "total_gates": gates,
        "two_qubit_gates": two_q,
    }
