"""Operator pools for ADAPT-VQE (paper §5.3, refs [4, 16, 17]).

A pool is a list of anti-Hermitian generators ``A_k``; each ADAPT
iteration measures the energy gradient ``<psi|[H, A_k]|psi>`` of every
candidate and appends ``exp(theta A)`` for the largest-gradient
operator.  Two standard pools are provided:

* ``uccsd_pool`` — fermionic singles + doubles generators (the pool of
  the original ADAPT-VQE paper [4]),
* ``qubit_pool`` — the individual Pauli strings appearing in those
  generators, each taken as an independent generator ``i P`` (the
  qubit-ADAPT pool of [16]; shallower circuits, more iterations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.chem.uccsd import uccsd_generators
from repro.ir.pauli import PauliString, PauliSum

__all__ = ["PoolOperator", "uccsd_pool", "qubit_pool", "taper_pool"]


@dataclass
class PoolOperator:
    """One pool candidate: a label plus its anti-Hermitian generator."""

    label: str
    generator: PauliSum

    @property
    def num_qubits(self) -> int:
        return self.generator.num_qubits


def uccsd_pool(num_spin_orbitals: int, num_electrons: int) -> List[PoolOperator]:
    """Fermionic UCCSD singles + doubles pool."""
    pool = []
    for exc, a in uccsd_generators(num_spin_orbitals, num_electrons):
        label = (
            f"s({exc[0]}->{exc[1]})"
            if len(exc) == 2
            else f"d({exc[0]},{exc[1]}->{exc[2]},{exc[3]})"
        )
        pool.append(PoolOperator(label=label, generator=a))
    return pool


def qubit_pool(num_spin_orbitals: int, num_electrons: int) -> List[PoolOperator]:
    """Qubit-ADAPT pool: each Pauli string of the UCCSD generators as
    an independent generator i*P (Z-ladders stripped, following [16])."""
    seen = set()
    pool: List[PoolOperator] = []
    n = num_spin_orbitals
    for _, a in uccsd_generators(num_spin_orbitals, num_electrons):
        for _, pstr in a:
            # Strip the JW Z-ladder: keep X/Y pattern only (qubit pool
            # operators need not be fermionic).
            x = pstr.x
            z = pstr.z & pstr.x  # keep Z only where combined with X (i.e. Y)
            stripped = PauliString(n, x, z)
            key = (stripped.x, stripped.z)
            if key in seen or stripped.is_identity:
                continue
            seen.add(key)
            pool.append(
                PoolOperator(
                    label=f"p({stripped.label()})",
                    generator=PauliSum.from_string(stripped, 1j),
                )
            )
    return pool


def taper_pool(pool: Sequence[PoolOperator], taper) -> List[PoolOperator]:
    """Project a pool into a Z2 symmetry sector.

    ``taper`` is a :class:`repro.chem.tapering.TaperResult`.  Each
    generator is tapered with ``strict=False`` — Pauli terms that break
    a symmetry are dropped (they have zero gradient from a symmetric
    reference state anyway) — and candidates that lose every term
    vanish from the pool.
    """
    out: List[PoolOperator] = []
    for op in pool:
        gen = taper.taper_operator(op.generator, strict=False)
        if len(gen) == 0:
            continue
        out.append(PoolOperator(label=op.label, generator=gen))
    return out
