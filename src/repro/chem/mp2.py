"""MP2 amplitudes and energy in the spin-orbital basis.

Second-order Moller–Plesset doubles amplitudes serve two roles here:

* a correlation-energy sanity anchor for the integral/SCF stack, and
* the external cluster amplitudes sigma_ext feeding the Hermitian
  downfolding commutator expansion (paper §2, Eq. 2) — exactly the
  perturbative seed the coupled-cluster downfolding literature uses
  for the external (out-of-active-space) excitations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.chem.hamiltonian import MolecularHamiltonian
from repro.chem.mo import MOIntegrals, spin_orbital_tensors

__all__ = ["MP2Result", "run_mp2"]


@dataclass
class MP2Result:
    """MP2 doubles amplitudes ``t[i, j, a, b]`` (spin-orbital,
    antisymmetrized convention) and the correlation energy."""

    t2: np.ndarray
    correlation_energy: float
    orbital_energies_so: np.ndarray
    num_occupied_so: int

    @property
    def num_spin_orbitals(self) -> int:
        return self.orbital_energies_so.shape[0]


def run_mp2(
    hamiltonian: MolecularHamiltonian, mo_energies: np.ndarray
) -> MP2Result:
    """MP2 from spatial integrals + orbital energies.

    Amplitudes: t_ijab = <ij||ab> / (e_i + e_j - e_a - e_b) with
    <ij||ab> = <ij|ab> - <ij|ba> over spin orbitals (interleaved).
    Energy: E2 = 1/4 sum |<ij||ab>|^2 / D_ijab.
    """
    mo = MOIntegrals(
        h_mo=hamiltonian.h,
        eri_mo=hamiltonian.eri,
        mo_energies=mo_energies,
        nuclear_repulsion=hamiltonian.constant,
        num_electrons=hamiltonian.num_electrons,
    )
    _, g_so = spin_orbital_tensors(mo)
    n_so = 2 * hamiltonian.num_orbitals
    n_occ = hamiltonian.num_electrons
    eps = np.repeat(mo_energies, 2)

    occ = slice(0, n_occ)
    virt = slice(n_occ, n_so)

    # Antisymmetrized <ij||ab>
    g_oovv = g_so[occ, occ, virt, virt]
    g_anti = g_oovv - g_oovv.transpose(0, 1, 3, 2)

    e_occ = eps[occ]
    e_virt = eps[virt]
    denom = (
        e_occ[:, None, None, None]
        + e_occ[None, :, None, None]
        - e_virt[None, None, :, None]
        - e_virt[None, None, None, :]
    )
    with np.errstate(divide="raise"):
        t2 = g_anti / denom

    e2 = 0.25 * float(np.sum(g_anti * t2))
    return MP2Result(
        t2=t2,
        correlation_energy=e2,
        orbital_energies_so=eps,
        num_occupied_so=n_occ,
    )
