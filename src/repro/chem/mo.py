"""AO -> MO integral transformation and spin-orbital tensors.

Conventions used throughout the chemistry stack:

* Spatial MO integrals: ``h_mo[p, q]`` one-electron; ``eri_mo`` in
  *chemists'* notation ``(pq|rs)``.
* Spin orbitals are **interleaved**: spin orbital ``2p`` is the alpha
  spin of spatial orbital ``p`` and ``2p + 1`` its beta spin.  Under
  Jordan–Wigner this maps spin orbital ``i`` to qubit ``i``.
* The second-quantized Hamiltonian is

      H = E_nuc + sum_{PQ} h[P,Q] a+_P a_Q
          + 1/2 sum_{PQRS} g[P,Q,R,S] a+_P a+_Q a_S a_R

  with ``g`` in *physicists'* notation <PQ|RS> = (PR|QS) delta_spin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.chem.scf import SCFResult

__all__ = ["MOIntegrals", "transform_to_mo", "spin_orbital_tensors"]


@dataclass
class MOIntegrals:
    """Spatial-orbital MO integrals plus metadata."""

    h_mo: np.ndarray          # (n, n) one-electron
    eri_mo: np.ndarray        # (n, n, n, n), chemists' (pq|rs)
    mo_energies: np.ndarray
    nuclear_repulsion: float
    num_electrons: int

    @property
    def num_orbitals(self) -> int:
        return self.h_mo.shape[0]

    @property
    def num_occupied(self) -> int:
        return self.num_electrons // 2


def transform_to_mo(scf: SCFResult) -> MOIntegrals:
    """Four-index transform of the AO integrals into the MO basis."""
    c = scf.mo_coeff
    h_mo = c.T @ scf.h_core @ c
    # Sequential quarter-transformations: O(n^5) instead of O(n^8).
    eri = np.einsum("pqrs,pi->iqrs", scf.eri, c, optimize=True)
    eri = np.einsum("iqrs,qj->ijrs", eri, c, optimize=True)
    eri = np.einsum("ijrs,rk->ijks", eri, c, optimize=True)
    eri_mo = np.einsum("ijks,sl->ijkl", eri, c, optimize=True)
    return MOIntegrals(
        h_mo=h_mo,
        eri_mo=eri_mo,
        mo_energies=scf.mo_energies.copy(),
        nuclear_repulsion=scf.nuclear_repulsion,
        num_electrons=scf.num_electrons,
    )


def spin_orbital_tensors(
    mo: MOIntegrals,
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand spatial MO integrals to interleaved spin orbitals.

    Returns ``(h_so, g_so)`` with ``h_so`` of shape (2n, 2n) and
    ``g_so[P,Q,R,S] = <PQ|RS>`` physicists' notation of shape (2n,)*4.
    """
    n = mo.num_orbitals
    n_so = 2 * n
    h_so = np.zeros((n_so, n_so))
    # h_so[P,Q] = h[p,q] if same spin
    for p in range(n):
        for q in range(n):
            h_so[2 * p, 2 * q] = mo.h_mo[p, q]
            h_so[2 * p + 1, 2 * q + 1] = mo.h_mo[p, q]

    g_so = np.zeros((n_so, n_so, n_so, n_so))
    # <PQ|RS> = (PR|QS) * delta(sP,sR) * delta(sQ,sS)
    eri = mo.eri_mo
    for p in range(n):
        for q in range(n):
            for r in range(n):
                for s in range(n):
                    val = eri[p, r, q, s]
                    if val == 0.0:
                        continue
                    for sp in (0, 1):
                        for sq in (0, 1):
                            g_so[2 * p + sp, 2 * q + sq, 2 * r + sp, 2 * s + sq] = val
    return h_so, g_so
