"""Second-quantized molecular Hamiltonians and active-space reduction.

``MolecularHamiltonian`` holds spatial-orbital integrals
(one-electron ``h``, chemists' two-electron ``eri``) plus a scalar
core/nuclear constant, and knows how to

* reduce itself to a frozen-core active space (the first, exact step
  of the paper's downfolding pipeline — external dynamical corrections
  are added by ``repro.chem.downfolding``),
* expand to a fermionic operator, and
* map to a qubit ``PauliSum`` under any mapping in
  ``repro.chem.mappings``.

A structurally-faithful synthetic generator is included for the
resource-counting studies (Figs. 1a/1b/3): it produces integrals with
the full 8-fold permutation symmetry of real two-electron integrals so
that JW Pauli-term counts match those of genuine chemistry
Hamiltonians of the same size — which is all those figures depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.chem.fermion import FermionOperator
from repro.chem.mo import MOIntegrals, spin_orbital_tensors, transform_to_mo
from repro.chem.scf import SCFResult
from repro.ir.pauli import PauliSum

__all__ = [
    "MolecularHamiltonian",
    "build_molecular_hamiltonian",
    "synthetic_two_body_hamiltonian",
]


@dataclass
class MolecularHamiltonian:
    """Spatial-orbital second-quantized Hamiltonian.

        H = constant + sum h[p,q] E_pq + 1/2 sum (pr|qs) e_pqrs

    stored via ``h`` (n x n) and chemists' ``eri`` (n x n x n x n).
    """

    constant: float
    h: np.ndarray
    eri: np.ndarray
    num_electrons: int

    @property
    def num_orbitals(self) -> int:
        return self.h.shape[0]

    @property
    def num_spin_orbitals(self) -> int:
        return 2 * self.num_orbitals

    @property
    def num_qubits(self) -> int:
        return self.num_spin_orbitals

    # -- active space ---------------------------------------------------------

    def active_space(
        self, core_orbitals: Sequence[int], active_orbitals: Sequence[int]
    ) -> "MolecularHamiltonian":
        """Exact frozen-core / restricted-active-space reduction.

        Core orbitals are kept doubly occupied and folded into the
        scalar constant and an effective one-body term; orbitals
        outside ``core + active`` are simply deleted (frozen virtuals).
        """
        core = list(core_orbitals)
        act = list(active_orbitals)
        if set(core) & set(act):
            raise ValueError("core and active orbitals overlap")
        n_core_elec = 2 * len(core)
        if n_core_elec > self.num_electrons:
            raise ValueError("more core electrons than electrons")

        # Scalar: E_core = sum_i 2 h_ii + sum_ij (2 (ii|jj) - (ij|ji))
        e_core = self.constant
        for i in core:
            e_core += 2.0 * self.h[i, i]
        for i in core:
            for j in core:
                e_core += 2.0 * self.eri[i, i, j, j] - self.eri[i, j, j, i]

        # Effective one-body: h'_pq = h_pq + sum_i (2 (pq|ii) - (pi|iq))
        na = len(act)
        h_act = np.zeros((na, na))
        for a, p in enumerate(act):
            for b, q in enumerate(act):
                val = self.h[p, q]
                for i in core:
                    val += 2.0 * self.eri[p, q, i, i] - self.eri[p, i, i, q]
                h_act[a, b] = val

        eri_act = self.eri[np.ix_(act, act, act, act)]
        return MolecularHamiltonian(
            constant=float(e_core),
            h=h_act,
            eri=eri_act,
            num_electrons=self.num_electrons - n_core_elec,
        )

    # -- operator forms -------------------------------------------------------------

    def spin_orbital_tensors(self) -> Tuple[np.ndarray, np.ndarray]:
        """(h_so, g_so) interleaved spin-orbital tensors (see chem.mo)."""
        mo = MOIntegrals(
            h_mo=self.h,
            eri_mo=self.eri,
            mo_energies=np.zeros(self.num_orbitals),
            nuclear_repulsion=self.constant,
            num_electrons=self.num_electrons,
        )
        return spin_orbital_tensors(mo)

    def to_fermion_operator(self, threshold: float = 1e-12) -> FermionOperator:
        """H as a normal-ordered fermionic operator (constant included)."""
        h_so, g_so = self.spin_orbital_tensors()
        n_so = self.num_spin_orbitals
        op = FermionOperator.identity(self.constant)
        terms = dict(op.terms)
        for p in range(n_so):
            for q in range(n_so):
                c = h_so[p, q]
                if abs(c) > threshold:
                    terms[((p, True), (q, False))] = (
                        terms.get(((p, True), (q, False)), 0.0) + c
                    )
        for p in range(n_so):
            for q in range(n_so):
                for r in range(n_so):
                    for s in range(n_so):
                        c = 0.5 * g_so[p, q, r, s]
                        if abs(c) > threshold:
                            key = ((p, True), (q, True), (s, False), (r, False))
                            terms[key] = terms.get(key, 0.0) + c
        return FermionOperator(terms)

    def to_qubit(
        self, mapping: str = "jordan-wigner", threshold: float = 1e-10
    ) -> PauliSum:
        """Qubit Hamiltonian under the chosen mapping."""
        from repro.chem.mappings import map_fermion_operator

        op = self.to_fermion_operator()
        return map_fermion_operator(op, self.num_spin_orbitals, mapping).chop(
            threshold
        )

    def hartree_fock_energy(self) -> float:
        """<HF|H|HF> from the stored integrals (sanity anchor)."""
        n_occ = self.num_electrons // 2
        e = self.constant
        for i in range(n_occ):
            e += 2.0 * self.h[i, i]
        for i in range(n_occ):
            for j in range(n_occ):
                e += 2.0 * self.eri[i, i, j, j] - self.eri[i, j, j, i]
        return float(e)


def build_molecular_hamiltonian(scf: SCFResult) -> MolecularHamiltonian:
    """MO-basis Hamiltonian from a converged SCF solution."""
    mo = transform_to_mo(scf)
    return MolecularHamiltonian(
        constant=mo.nuclear_repulsion,
        h=mo.h_mo,
        eri=mo.eri_mo,
        num_electrons=mo.num_electrons,
    )


def synthetic_two_body_hamiltonian(
    num_spatial_orbitals: int,
    num_electrons: Optional[int] = None,
    seed: int = 0,
    scale_one_body: float = 1.0,
    scale_two_body: float = 0.1,
) -> MolecularHamiltonian:
    """Random integrals with real-chemistry index symmetries.

    ``h`` is symmetric; ``eri`` carries the full 8-fold symmetry of
    real-orbital two-electron integrals.  Used for the Fig. 1a/1b/3
    scaling studies, where only the *structure* (which Pauli strings
    JW can produce) matters — a cc-pV5Z H2O active space of the same
    size has the same term census.
    """
    rng = np.random.default_rng(seed)
    n = num_spatial_orbitals
    if num_electrons is None:
        num_electrons = n  # half filling (n of 2n spin orbitals)
    h = rng.normal(scale=scale_one_body, size=(n, n))
    h = 0.5 * (h + h.T)
    eri = rng.normal(scale=scale_two_body, size=(n, n, n, n))
    # Symmetrize: (pq|rs) = (qp|rs) = (pq|sr) = (rs|pq) and transposes.
    eri = eri + eri.transpose(1, 0, 2, 3)
    eri = eri + eri.transpose(0, 1, 3, 2)
    eri = eri + eri.transpose(2, 3, 0, 1)
    eri /= 8.0
    return MolecularHamiltonian(
        constant=0.0, h=h, eri=eri, num_electrons=num_electrons
    )
