"""Quantum-chemistry substrate: Gaussian integrals, RHF, MP2,
fermionic algebra, qubit mappings, CC downfolding, UCCSD, ADAPT pools,
and exact-diagonalization references."""

from repro.chem.basis import BasisFunction, build_basis
from repro.chem.ci import (
    CIResult,
    cisd_determinants,
    davidson,
    enumerate_determinants,
    run_ci,
)
from repro.chem.active_space import (
    ActiveSpaceSelection,
    mp2_natural_occupations,
    select_active_space,
)
from repro.chem.lattice import (
    fermi_hubbard,
    fermi_hubbard_qubit,
    heisenberg_xxz,
    transverse_field_ising,
)
from repro.chem.properties import AU_TO_DEBYE, dipole_moment
from repro.chem.rdm import energy_from_rdms, natural_occupations, one_rdm, two_rdm
from repro.chem.spin import (
    s_plus_operator,
    s_squared_operator,
    s_z_operator,
    spin_expectations,
)
from repro.chem.downfolding import (
    DownfoldingResult,
    hermitian_downfold,
    nonhermitian_downfold_energy,
    project_onto_reference,
)
from repro.chem.fci import exact_ground_energy, exact_ground_state
from repro.chem.fermion import FermionOperator
from repro.chem.hamiltonian import (
    MolecularHamiltonian,
    build_molecular_hamiltonian,
    synthetic_two_body_hamiltonian,
)
from repro.chem.mappings import (
    bravyi_kitaev,
    jordan_wigner,
    map_fermion_operator,
    parity_transform,
)
from repro.chem.molecule import Atom, Molecule, beh2, h2, h2o, h4_chain, hydrogen_fluoride, lih
from repro.chem.mo import MOIntegrals, spin_orbital_tensors, transform_to_mo
from repro.chem.mp2 import MP2Result, run_mp2
from repro.chem.pools import PoolOperator, qubit_pool, uccsd_pool
from repro.chem.reference import (
    hartree_fock_bitstring,
    hartree_fock_circuit,
    hartree_fock_state,
)
from repro.chem.scf import SCFResult, run_rhf
from repro.chem.uccsd import (
    UCCSDAnsatz,
    build_uccsd_circuit,
    compile_evolution,
    count_uccsd_gates,
    pauli_exponential,
    uccsd_excitations,
    uccsd_generators,
)

__all__ = [
    "Atom",
    "dipole_moment",
    "select_active_space",
    "mp2_natural_occupations",
    "ActiveSpaceSelection",
    "transverse_field_ising",
    "heisenberg_xxz",
    "fermi_hubbard",
    "fermi_hubbard_qubit",
    "AU_TO_DEBYE",
    "one_rdm",
    "two_rdm",
    "energy_from_rdms",
    "natural_occupations",
    "s_z_operator",
    "s_plus_operator",
    "s_squared_operator",
    "spin_expectations",
    "Molecule",
    "h2",
    "h2o",
    "h4_chain",
    "lih",
    "beh2",
    "hydrogen_fluoride",
    "BasisFunction",
    "build_basis",
    "run_ci",
    "CIResult",
    "davidson",
    "enumerate_determinants",
    "cisd_determinants",
    "SCFResult",
    "run_rhf",
    "MOIntegrals",
    "transform_to_mo",
    "spin_orbital_tensors",
    "MP2Result",
    "run_mp2",
    "FermionOperator",
    "jordan_wigner",
    "parity_transform",
    "bravyi_kitaev",
    "map_fermion_operator",
    "MolecularHamiltonian",
    "build_molecular_hamiltonian",
    "synthetic_two_body_hamiltonian",
    "DownfoldingResult",
    "hermitian_downfold",
    "nonhermitian_downfold_energy",
    "project_onto_reference",
    "exact_ground_energy",
    "exact_ground_state",
    "UCCSDAnsatz",
    "build_uccsd_circuit",
    "compile_evolution",
    "count_uccsd_gates",
    "pauli_exponential",
    "uccsd_excitations",
    "uccsd_generators",
    "PoolOperator",
    "uccsd_pool",
    "qubit_pool",
    "hartree_fock_bitstring",
    "hartree_fock_circuit",
    "hartree_fock_state",
]
