"""Restricted Hartree–Fock with DIIS acceleration.

Produces the molecular-orbital basis everything downstream consumes:
MO coefficients for the integral transformation (``repro.chem.mo``),
orbital energies for MP2 amplitudes (the source of the downfolding
sigma_ext), and the reference determinant for UCCSD/ADAPT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.chem.basis import BasisFunction, build_basis
from repro.chem.integrals import (
    core_hamiltonian,
    eri_tensor,
    overlap_matrix,
)
from repro.chem.molecule import Molecule

__all__ = ["SCFResult", "run_rhf"]


@dataclass
class SCFResult:
    """Converged RHF solution.

    Attributes
    ----------
    energy:
        Total RHF energy (electronic + nuclear repulsion), Hartree.
    mo_coeff:
        AO->MO coefficient matrix C (columns are MOs, ascending energy).
    mo_energies:
        Orbital energies (Hartree).
    h_core, eri, overlap:
        AO-basis integrals, retained for the MO transformation.
    """

    energy: float
    electronic_energy: float
    nuclear_repulsion: float
    mo_coeff: np.ndarray
    mo_energies: np.ndarray
    h_core: np.ndarray
    eri: np.ndarray
    overlap: np.ndarray
    num_electrons: int
    converged: bool
    iterations: int
    molecule: Molecule
    basis: List[BasisFunction]

    @property
    def num_orbitals(self) -> int:
        """Number of spatial MOs."""
        return self.mo_coeff.shape[1]

    @property
    def num_occupied(self) -> int:
        """Number of doubly-occupied spatial MOs."""
        return self.num_electrons // 2


def _build_fock(h: np.ndarray, eri: np.ndarray, dm: np.ndarray) -> np.ndarray:
    """F = h + J - K/2 with density matrix D = 2 C_occ C_occ^T."""
    j = np.einsum("pqrs,rs->pq", eri, dm)
    k = np.einsum("prqs,rs->pq", eri, dm)
    return h + j - 0.5 * k


def run_rhf(
    molecule: Molecule,
    basis_name: str = "sto-3g",
    max_iterations: int = 200,
    conv_tol: float = 1e-10,
    diis_size: int = 8,
) -> SCFResult:
    """Solve RHF for a closed-shell molecule.

    Raises for open shells (odd electron count): the reproduction's
    chemistry workloads are all closed-shell, matching the paper.
    """
    n_elec = molecule.num_electrons
    if n_elec % 2 != 0:
        raise ValueError("RHF requires an even number of electrons")
    n_occ = n_elec // 2

    bfs = build_basis(molecule, basis_name)
    s = overlap_matrix(bfs)
    h = core_hamiltonian(bfs, molecule)
    eri = eri_tensor(bfs)
    e_nuc = molecule.nuclear_repulsion()

    # Symmetric (Loewdin) orthogonalization.
    s_vals, s_vecs = np.linalg.eigh(s)
    if np.min(s_vals) < 1e-10:
        raise ValueError("linearly dependent basis (overlap nearly singular)")
    x = s_vecs @ np.diag(s_vals ** -0.5) @ s_vecs.T

    def solve_fock(f: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        fp = x.T @ f @ x
        eps, cp = np.linalg.eigh(fp)
        return eps, x @ cp

    # Core-Hamiltonian initial guess.
    eps, c = solve_fock(h)
    dm = 2.0 * c[:, :n_occ] @ c[:, :n_occ].T

    diis_focks: List[np.ndarray] = []
    diis_errs: List[np.ndarray] = []
    e_old = 0.0
    converged = False
    it = 0
    for it in range(1, max_iterations + 1):
        f = _build_fock(h, eri, dm)

        # DIIS extrapolation on the orthonormal-basis error FDS - SDF.
        err = x.T @ (f @ dm @ s - s @ dm @ f) @ x
        diis_focks.append(f.copy())
        diis_errs.append(err)
        if len(diis_focks) > diis_size:
            diis_focks.pop(0)
            diis_errs.pop(0)
        if len(diis_focks) >= 2:
            m = len(diis_focks)
            bmat = -np.ones((m + 1, m + 1))
            bmat[m, m] = 0.0
            for i in range(m):
                for j in range(m):
                    bmat[i, j] = np.einsum("pq,pq->", diis_errs[i], diis_errs[j])
            rhs = np.zeros(m + 1)
            rhs[m] = -1.0
            try:
                coeffs = np.linalg.solve(bmat, rhs)[:m]
                f = sum(ci * fi for ci, fi in zip(coeffs, diis_focks))
            except np.linalg.LinAlgError:
                pass  # fall back to un-extrapolated Fock

        eps, c = solve_fock(f)
        dm_new = 2.0 * c[:, :n_occ] @ c[:, :n_occ].T
        e_elec = 0.5 * np.einsum("pq,pq->", dm_new, h + _build_fock(h, eri, dm_new))
        d_e = abs(e_elec - e_old)
        d_dm = np.linalg.norm(dm_new - dm)
        dm = dm_new
        e_old = e_elec
        if d_e < conv_tol and d_dm < math_sqrt_tol(conv_tol):
            converged = True
            break

    return SCFResult(
        energy=float(e_old + e_nuc),
        electronic_energy=float(e_old),
        nuclear_repulsion=float(e_nuc),
        mo_coeff=c,
        mo_energies=eps,
        h_core=h,
        eri=eri,
        overlap=s,
        num_electrons=n_elec,
        converged=converged,
        iterations=it,
        molecule=molecule,
        basis=bfs,
    )


def math_sqrt_tol(tol: float) -> float:
    """Density-matrix convergence threshold paired with an energy
    threshold ``tol`` (energy is quadratic in the density error)."""
    return tol ** 0.5
