"""Spin operators: S_z, S+, S-, and total S^2.

Interleaved spin-orbital convention (even = alpha, odd = beta).  Used
to verify spin symmetry of simulated states: a closed-shell VQE ground
state should have <S^2> = 0 (singlet); the low-lying excited state VQD
finds for H2 is the m_s = 0 triplet component with <S^2> = 2.
"""

from __future__ import annotations

import numpy as np

from repro.chem.fermion import FermionOperator
from repro.chem.mappings import jordan_wigner
from repro.ir.pauli import PauliSum

__all__ = ["s_z_operator", "s_plus_operator", "s_squared_operator", "spin_expectations"]


def s_z_operator(num_spatial: int) -> FermionOperator:
    """S_z = 1/2 sum_p (n_{p alpha} - n_{p beta})."""
    op = FermionOperator()
    for p in range(num_spatial):
        op = op + FermionOperator.term([(2 * p, True), (2 * p, False)], 0.5)
        op = op + FermionOperator.term(
            [(2 * p + 1, True), (2 * p + 1, False)], -0.5
        )
    return op


def s_plus_operator(num_spatial: int) -> FermionOperator:
    """S+ = sum_p a+_{p alpha} a_{p beta}."""
    op = FermionOperator()
    for p in range(num_spatial):
        op = op + FermionOperator.term([(2 * p, True), (2 * p + 1, False)], 1.0)
    return op


def s_squared_operator(num_spatial: int) -> FermionOperator:
    """S^2 = S- S+ + S_z (S_z + 1), normal ordered."""
    sp = s_plus_operator(num_spatial)
    sm = sp.dagger()
    sz = s_z_operator(num_spatial)
    identity = FermionOperator.identity(1.0)
    return (sm * sp + sz * (sz + identity)).normal_ordered()


def spin_expectations(
    state: np.ndarray, num_spatial: int
) -> "tuple[float, float]":
    """(<S_z>, <S^2>) of a JW-encoded state on 2*num_spatial qubits."""
    n_so = 2 * num_spatial
    if state.shape != (1 << n_so,):
        raise ValueError("state dimension mismatch")
    sz_q = jordan_wigner(s_z_operator(num_spatial), n_so)
    s2_q = jordan_wigner(s_squared_operator(num_spatial), n_so)
    return (
        float(sz_q.expectation(state).real),
        float(s2_q.expectation(state).real),
    )
