"""Gaussian basis sets: STO-3G shell data and basis-function expansion.

The paper's chemistry workflows draw their Hamiltonians from standard
Gaussian-basis electronic-structure calculations (NWChem on the
authors' side).  We carry the STO-3G minimal basis for H–Ne, which is
enough to build the real H2O Hamiltonian behind Fig. 5 (7 spatial
orbitals; O 1s frozen -> 6-orbital / 12-qubit active space) plus the
H2/H4/LiH example systems.

Data layout per element: a list of shells, each
``(angular_momentum, [exponents], [contraction coefficients])``.
SP shells are stored as separate s and p entries sharing exponents,
which is how the integrals code consumes them.

Primitive normalization and contracted renormalization follow the
standard Cartesian-Gaussian conventions (Helgaker et al., ch. 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.chem.molecule import Molecule

__all__ = ["BasisFunction", "build_basis", "STO3G"]

# -- STO-3G data (standard published exponents/coefficients) -------------------

_S_CONTR = [0.15432897, 0.53532814, 0.44463454]
_SP_S_CONTR = [-0.09996723, 0.39951283, 0.70011547]
_SP_P_CONTR = [0.15591627, 0.60768372, 0.39195739]

#: element -> list of (L, exponents, coefficients)
STO3G: Dict[str, List[Tuple[int, List[float], List[float]]]] = {
    "H": [(0, [3.42525091, 0.62391373, 0.16885540], _S_CONTR)],
    "He": [(0, [6.36242139, 1.15892300, 0.31364979], _S_CONTR)],
    "Li": [
        (0, [16.11957475, 2.93620066, 0.79465050], _S_CONTR),
        (0, [0.63628970, 0.14786010, 0.04808870], _SP_S_CONTR),
        (1, [0.63628970, 0.14786010, 0.04808870], _SP_P_CONTR),
    ],
    "Be": [
        (0, [30.16787069, 5.49511766, 1.48719276], _S_CONTR),
        (0, [1.31483311, 0.30553890, 0.09937074], _SP_S_CONTR),
        (1, [1.31483311, 0.30553890, 0.09937074], _SP_P_CONTR),
    ],
    "B": [
        (0, [48.79111318, 8.88736228, 2.40526704], _S_CONTR),
        (0, [2.23695661, 0.51982050, 0.16906180], _SP_S_CONTR),
        (1, [2.23695661, 0.51982050, 0.16906180], _SP_P_CONTR),
    ],
    "C": [
        (0, [71.61683735, 13.04509632, 3.53051216], _S_CONTR),
        (0, [2.94124940, 0.68348310, 0.22228990], _SP_S_CONTR),
        (1, [2.94124940, 0.68348310, 0.22228990], _SP_P_CONTR),
    ],
    "N": [
        (0, [99.10616896, 18.05231239, 4.88566024], _S_CONTR),
        (0, [3.78045590, 0.87849660, 0.28571440], _SP_S_CONTR),
        (1, [3.78045590, 0.87849660, 0.28571440], _SP_P_CONTR),
    ],
    "O": [
        (0, [130.70932014, 23.80886605, 6.44360831], _S_CONTR),
        (0, [5.03315132, 1.16959612, 0.38038900], _SP_S_CONTR),
        (1, [5.03315132, 1.16959612, 0.38038900], _SP_P_CONTR),
    ],
    "F": [
        (0, [166.67912940, 30.36081233, 8.21682067], _S_CONTR),
        (0, [6.46480325, 1.50228124, 0.48858850], _SP_S_CONTR),
        (1, [6.46480325, 1.50228124, 0.48858850], _SP_P_CONTR),
    ],
    "Ne": [
        (0, [207.01561000, 37.70815100, 10.20529700], _S_CONTR),
        (0, [8.24631510, 1.91626620, 0.62322930], _SP_S_CONTR),
        (1, [8.24631510, 1.91626620, 0.62322930], _SP_P_CONTR),
    ],
}


def _double_factorial(n: int) -> int:
    if n <= 0:
        return 1
    out = 1
    while n > 0:
        out *= n
        n -= 2
    return out


def primitive_norm(alpha: float, lmn: Tuple[int, int, int]) -> float:
    """Normalization constant of a primitive Cartesian Gaussian
    x^l y^m z^n exp(-alpha r^2)."""
    l, m, n = lmn
    L = l + m + n
    num = (2.0 * alpha / math.pi) ** 0.75 * (4.0 * alpha) ** (L / 2.0)
    den = math.sqrt(
        _double_factorial(2 * l - 1)
        * _double_factorial(2 * m - 1)
        * _double_factorial(2 * n - 1)
    )
    return num / den


@dataclass
class BasisFunction:
    """A contracted Cartesian Gaussian basis function.

    ``coeffs`` already include primitive normalization factors and the
    contracted-renormalization constant, so integrals code can simply
    sum over primitives with these weights.
    """

    center: Tuple[float, float, float]
    lmn: Tuple[int, int, int]
    exponents: np.ndarray
    coeffs: np.ndarray
    shell_index: int = -1
    atom_index: int = -1

    @property
    def angular_momentum(self) -> int:
        return sum(self.lmn)


def _cartesian_components(L: int) -> List[Tuple[int, int, int]]:
    """Cartesian angular-momentum triples in canonical order."""
    if L == 0:
        return [(0, 0, 0)]
    if L == 1:
        return [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
    comps = []
    for l in range(L, -1, -1):
        for m in range(L - l, -1, -1):
            comps.append((l, m, L - l - m))
    return comps


def _contracted_self_overlap(
    exponents: np.ndarray, weighted: np.ndarray, lmn: Tuple[int, int, int]
) -> float:
    """<phi|phi> for a contraction with per-primitive weights (includes
    primitive norms)."""
    l, m, n = lmn
    L = l + m + n
    s = 0.0
    pref = (
        _double_factorial(2 * l - 1)
        * _double_factorial(2 * m - 1)
        * _double_factorial(2 * n - 1)
        * math.pi ** 1.5
    )
    for ci, ai in zip(weighted, exponents):
        for cj, aj in zip(weighted, exponents):
            p = ai + aj
            s += ci * cj * pref / (2.0 * p) ** L / p ** 1.5
    return s


def build_basis(molecule: Molecule, basis_name: str = "sto-3g") -> List[BasisFunction]:
    """Expand a molecule into a list of contracted basis functions."""
    if basis_name.lower().replace("_", "-") != "sto-3g":
        raise ValueError(f"unsupported basis {basis_name!r} (only STO-3G shipped)")
    functions: List[BasisFunction] = []
    shell_counter = 0
    for atom_idx, atom in enumerate(molecule.atoms):
        try:
            shells = STO3G[atom.symbol]
        except KeyError:
            raise ValueError(f"no STO-3G data for element {atom.symbol!r}") from None
        for L, exps, coefs in shells:
            exps_arr = np.asarray(exps, dtype=float)
            coefs_arr = np.asarray(coefs, dtype=float)
            for lmn in _cartesian_components(L):
                weighted = coefs_arr * np.array(
                    [primitive_norm(a, lmn) for a in exps_arr]
                )
                norm = _contracted_self_overlap(exps_arr, weighted, lmn)
                weighted = weighted / math.sqrt(norm)
                functions.append(
                    BasisFunction(
                        center=atom.position,
                        lmn=lmn,
                        exponents=exps_arr,
                        coeffs=weighted,
                        shell_index=shell_counter,
                        atom_index=atom_idx,
                    )
                )
            shell_counter += 1
    return functions
