"""Molecular geometry container.

Coordinates are stored in Bohr (atomic units); constructors accept
Angstrom for convenience.  Provides the nuclear-repulsion energy and
the standard test molecules used across the examples and benchmarks
(H2, H4 chain, LiH, H2O — the paper's showcase molecule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Atom", "Molecule", "ANGSTROM_TO_BOHR"]

ANGSTROM_TO_BOHR = 1.8897259886

_SYMBOL_TO_Z = {
    "H": 1, "He": 2, "Li": 3, "Be": 4, "B": 5,
    "C": 6, "N": 7, "O": 8, "F": 9, "Ne": 10,
}


@dataclass(frozen=True)
class Atom:
    """One nucleus: element symbol and position in Bohr."""

    symbol: str
    position: Tuple[float, float, float]

    @property
    def atomic_number(self) -> int:
        try:
            return _SYMBOL_TO_Z[self.symbol]
        except KeyError:
            raise ValueError(f"unsupported element {self.symbol!r}") from None


@dataclass
class Molecule:
    """A molecule: atoms (positions in Bohr), charge and spin multiplicity."""

    atoms: List[Atom]
    charge: int = 0
    multiplicity: int = 1

    @classmethod
    def from_angstrom(
        cls,
        spec: Sequence[Tuple[str, Tuple[float, float, float]]],
        charge: int = 0,
        multiplicity: int = 1,
    ) -> "Molecule":
        atoms = [
            Atom(sym, tuple(ANGSTROM_TO_BOHR * np.asarray(pos)))
            for sym, pos in spec
        ]
        return cls(atoms, charge, multiplicity)

    @property
    def num_electrons(self) -> int:
        return sum(a.atomic_number for a in self.atoms) - self.charge

    def nuclear_repulsion(self) -> float:
        """Sum over pairs Z_i Z_j / |R_i - R_j| (atomic units)."""
        e = 0.0
        for i, a in enumerate(self.atoms):
            for b in self.atoms[i + 1:]:
                r = np.linalg.norm(np.asarray(a.position) - np.asarray(b.position))
                e += a.atomic_number * b.atomic_number / r
        return e

    def __repr__(self) -> str:
        syms = "".join(a.symbol for a in self.atoms)
        return f"Molecule({syms}, charge={self.charge}, mult={self.multiplicity})"


# -- standard geometries used by the paper's experiments ----------------------


def h2(bond_length_angstrom: float = 0.7414) -> Molecule:
    """H2 at (by default) its experimental equilibrium bond length."""
    return Molecule.from_angstrom(
        [("H", (0.0, 0.0, 0.0)), ("H", (0.0, 0.0, bond_length_angstrom))]
    )


def h4_chain(spacing_angstrom: float = 0.9) -> Molecule:
    """Linear H4 — a standard strongly-correlated VQE benchmark."""
    return Molecule.from_angstrom(
        [("H", (0.0, 0.0, i * spacing_angstrom)) for i in range(4)]
    )


def lih(bond_length_angstrom: float = 1.5949) -> Molecule:
    """LiH at its experimental equilibrium bond length."""
    return Molecule.from_angstrom(
        [("Li", (0.0, 0.0, 0.0)), ("H", (0.0, 0.0, bond_length_angstrom))]
    )


def beh2(bond_angstrom: float = 1.3264) -> Molecule:
    """Linear BeH2 — a 7-orbital classic VQE benchmark."""
    return Molecule.from_angstrom(
        [
            ("Be", (0.0, 0.0, 0.0)),
            ("H", (0.0, 0.0, bond_angstrom)),
            ("H", (0.0, 0.0, -bond_angstrom)),
        ]
    )


def hydrogen_fluoride(bond_angstrom: float = 0.9168) -> Molecule:
    """HF at its experimental equilibrium bond length."""
    return Molecule.from_angstrom(
        [("F", (0.0, 0.0, 0.0)), ("H", (0.0, 0.0, bond_angstrom))]
    )


def h2o(
    oh_angstrom: float = 0.9572, angle_deg: float = 104.52
) -> Molecule:
    """Water at the experimental gas-phase geometry.

    This is the paper's showcase system: Fig. 5 runs ADAPT-VQE on the
    downfolded 6-orbital (12-qubit) active space of H2O.
    """
    half = np.deg2rad(angle_deg) / 2.0
    return Molecule.from_angstrom(
        [
            ("O", (0.0, 0.0, 0.0)),
            ("H", (0.0, oh_angstrom * np.sin(half), oh_angstrom * np.cos(half))),
            ("H", (0.0, -oh_angstrom * np.sin(half), oh_angstrom * np.cos(half))),
        ]
    )
