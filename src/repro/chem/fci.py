"""Exact diagonalization (FCI) references.

Ground-state energies used as the "true ground state" baseline in the
Fig. 5 convergence study come from sparse diagonalization of the qubit
Hamiltonian restricted to the physical particle-number (and optionally
S_z) sector, which keeps the eigensolve honest even when other Fock
sectors dip lower.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.ir.pauli import PauliSum
from repro.utils.bitops import count_set_bits

__all__ = ["exact_ground_energy", "exact_ground_state", "sector_indices"]


def sector_indices(
    num_qubits: int, num_particles: Optional[int] = None, sz: Optional[float] = None
) -> np.ndarray:
    """Basis-state indices with the given particle number and S_z.

    Interleaved spin convention: even qubits are alpha, odd are beta;
    ``sz`` is (n_alpha - n_beta) / 2.
    """
    idx = np.arange(1 << num_qubits, dtype=np.int64)
    mask = np.ones(idx.shape[0], dtype=bool)
    if num_particles is not None:
        mask &= count_set_bits(idx) == num_particles
    if sz is not None:
        alpha_mask = sum(1 << q for q in range(0, num_qubits, 2))
        beta_mask = sum(1 << q for q in range(1, num_qubits, 2))
        n_a = count_set_bits(idx & alpha_mask)
        n_b = count_set_bits(idx & beta_mask)
        mask &= (n_a - n_b) == int(round(2 * sz))
    return idx[mask]


def exact_ground_state(
    hamiltonian: PauliSum,
    num_particles: Optional[int] = None,
    sz: Optional[float] = None,
) -> Tuple[float, np.ndarray]:
    """Lowest eigenpair, optionally restricted to a symmetry sector.

    Returns ``(energy, state)`` with ``state`` embedded back in the
    full 2^n space (zeros outside the sector).
    """
    n = hamiltonian.num_qubits
    mat = hamiltonian.to_sparse()
    if num_particles is None and sz is None:
        sub = mat
        embed = None
    else:
        keep = sector_indices(n, num_particles, sz)
        if keep.size == 0:
            raise ValueError("empty symmetry sector")
        sub = mat[np.ix_(keep, keep)].tocsr()
        embed = keep
    dim = sub.shape[0]
    if dim <= 256:
        vals, vecs = np.linalg.eigh(sub.toarray())
        e0, v0 = float(vals[0]), vecs[:, 0]
    else:
        vals, vecs = spla.eigsh(sub, k=1, which="SA", maxiter=10000)
        e0, v0 = float(vals[0]), vecs[:, 0]
    if embed is None:
        state = v0.astype(np.complex128)
    else:
        state = np.zeros(1 << n, dtype=np.complex128)
        state[embed] = v0
    return e0, state


def exact_ground_energy(
    hamiltonian: PauliSum,
    num_particles: Optional[int] = None,
    sz: Optional[float] = None,
) -> float:
    """Lowest eigenvalue (sector-restricted if requested)."""
    e0, _ = exact_ground_state(hamiltonian, num_particles, sz)
    return e0
