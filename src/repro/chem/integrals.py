"""Molecular integrals over contracted Cartesian Gaussians.

McMurchie–Davidson scheme (Helgaker, Jorgensen & Olsen, ch. 9):
products of Gaussians are expanded in Hermite Gaussians via the E
coefficients; Coulomb-type integrals then reduce to Hermite Coulomb
integrals R built on the Boys function.

This module is the "NWChem role" substrate of the reproduction: it
supplies the real one- and two-electron integrals behind the H2O
Hamiltonian of Fig. 5.  Matrix sizes here are tiny (<=~20 basis
functions), so clarity and correctness win over micro-optimization;
the 8-fold permutation symmetry of the ERI tensor is still exploited
because it is a 16x reduction for free.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.special import hyp1f1

from repro.chem.basis import BasisFunction
from repro.chem.molecule import Molecule

__all__ = [
    "boys",
    "overlap_matrix",
    "kinetic_matrix",
    "nuclear_attraction_matrix",
    "eri_tensor",
    "core_hamiltonian",
]


def boys(n: int, x: float) -> float:
    """Boys function F_n(x) = int_0^1 t^{2n} exp(-x t^2) dt."""
    return float(hyp1f1(n + 0.5, n + 1.5, -x)) / (2 * n + 1)


def _hermite_e(
    i: int, j: int, t: int, Qx: float, a: float, b: float, memo: Dict
) -> float:
    """Hermite expansion coefficient E_t^{ij} for a 1-D Gaussian product."""
    if t < 0 or t > i + j:
        return 0.0
    key = (i, j, t)
    if key in memo:
        return memo[key]
    p = a + b
    q = a * b / p
    if i == j == t == 0:
        val = math.exp(-q * Qx * Qx)
    elif j == 0:
        val = (
            (1.0 / (2.0 * p)) * _hermite_e(i - 1, j, t - 1, Qx, a, b, memo)
            - (q * Qx / a) * _hermite_e(i - 1, j, t, Qx, a, b, memo)
            + (t + 1) * _hermite_e(i - 1, j, t + 1, Qx, a, b, memo)
        )
    else:
        val = (
            (1.0 / (2.0 * p)) * _hermite_e(i, j - 1, t - 1, Qx, a, b, memo)
            + (q * Qx / b) * _hermite_e(i, j - 1, t, Qx, a, b, memo)
            + (t + 1) * _hermite_e(i, j - 1, t + 1, Qx, a, b, memo)
        )
    memo[key] = val
    return val


def _overlap_prim(
    a: float,
    lmn1: Tuple[int, int, int],
    A: Sequence[float],
    b: float,
    lmn2: Tuple[int, int, int],
    B: Sequence[float],
) -> float:
    """<prim_a | prim_b> for unnormalized primitives."""
    p = a + b
    s = (math.pi / p) ** 1.5
    for d in range(3):
        memo: Dict = {}
        s *= _hermite_e(lmn1[d], lmn2[d], 0, A[d] - B[d], a, b, memo)
    return s


def _kinetic_prim(
    a: float,
    lmn1: Tuple[int, int, int],
    A: Sequence[float],
    b: float,
    lmn2: Tuple[int, int, int],
    B: Sequence[float],
) -> float:
    """Kinetic-energy integral via overlap integrals of shifted momenta."""
    l2, m2, n2 = lmn2

    def S(d_lmn2: Tuple[int, int, int]) -> float:
        if min(d_lmn2) < 0:
            return 0.0
        return _overlap_prim(a, lmn1, A, b, d_lmn2, B)

    term0 = b * (2 * (l2 + m2 + n2) + 3) * S((l2, m2, n2))
    term1 = -2.0 * b * b * (
        S((l2 + 2, m2, n2)) + S((l2, m2 + 2, n2)) + S((l2, m2, n2 + 2))
    )
    term2 = -0.5 * (
        l2 * (l2 - 1) * S((l2 - 2, m2, n2))
        + m2 * (m2 - 1) * S((l2, m2 - 2, n2))
        + n2 * (n2 - 1) * S((l2, m2, n2 - 2))
    )
    return term0 + term1 + term2


def _hermite_coulomb(
    t: int,
    u: int,
    v: int,
    n: int,
    p: float,
    PC: np.ndarray,
    memo: Dict,
) -> float:
    """Hermite Coulomb integral R^n_{tuv}(p, P - C)."""
    key = (t, u, v, n)
    if key in memo:
        return memo[key]
    if t == u == v == 0:
        r2 = float(PC @ PC)
        val = (-2.0 * p) ** n * boys(n, p * r2)
    elif t > 0:
        val = (t - 1) * _hermite_coulomb(t - 2, u, v, n + 1, p, PC, memo) if t > 1 else 0.0
        val += PC[0] * _hermite_coulomb(t - 1, u, v, n + 1, p, PC, memo)
    elif u > 0:
        val = (u - 1) * _hermite_coulomb(t, u - 2, v, n + 1, p, PC, memo) if u > 1 else 0.0
        val += PC[1] * _hermite_coulomb(t, u - 1, v, n + 1, p, PC, memo)
    else:
        val = (v - 1) * _hermite_coulomb(t, u, v - 2, n + 1, p, PC, memo) if v > 1 else 0.0
        val += PC[2] * _hermite_coulomb(t, u, v - 1, n + 1, p, PC, memo)
    memo[key] = val
    return val


def _nuclear_prim(
    a: float,
    lmn1: Tuple[int, int, int],
    A: np.ndarray,
    b: float,
    lmn2: Tuple[int, int, int],
    B: np.ndarray,
    C: np.ndarray,
) -> float:
    """<prim_a| 1/|r - C| |prim_b> (positive; caller applies -Z)."""
    p = a + b
    P = (a * A + b * B) / p
    e_memos = [{}, {}, {}]
    r_memo: Dict = {}
    total = 0.0
    l1, m1, n1 = lmn1
    l2, m2, n2 = lmn2
    for t in range(l1 + l2 + 1):
        Et = _hermite_e(l1, l2, t, A[0] - B[0], a, b, e_memos[0])
        if Et == 0.0:
            continue
        for u in range(m1 + m2 + 1):
            Eu = _hermite_e(m1, m2, u, A[1] - B[1], a, b, e_memos[1])
            if Eu == 0.0:
                continue
            for v in range(n1 + n2 + 1):
                Ev = _hermite_e(n1, n2, v, A[2] - B[2], a, b, e_memos[2])
                if Ev == 0.0:
                    continue
                total += Et * Eu * Ev * _hermite_coulomb(
                    t, u, v, 0, p, P - C, r_memo
                )
    return (2.0 * math.pi / p) * total


def _eri_prim(
    a: float, lmn1, A: np.ndarray,
    b: float, lmn2, B: np.ndarray,
    c: float, lmn3, C: np.ndarray,
    d: float, lmn4, D: np.ndarray,
) -> float:
    """Two-electron repulsion integral (ab|cd) over primitives
    (chemists' notation: electron 1 in a,b; electron 2 in c,d)."""
    p = a + b
    q = c + d
    alpha = p * q / (p + q)
    P = (a * A + b * B) / p
    Q = (c * C + d * D) / q
    e1 = [{}, {}, {}]
    e2 = [{}, {}, {}]
    r_memo: Dict = {}
    l1, m1, n1 = lmn1
    l2, m2, n2 = lmn2
    l3, m3, n3 = lmn3
    l4, m4, n4 = lmn4
    total = 0.0
    for t in range(l1 + l2 + 1):
        E1t = _hermite_e(l1, l2, t, A[0] - B[0], a, b, e1[0])
        if E1t == 0.0:
            continue
        for u in range(m1 + m2 + 1):
            E1u = _hermite_e(m1, m2, u, A[1] - B[1], a, b, e1[1])
            if E1u == 0.0:
                continue
            for v in range(n1 + n2 + 1):
                E1v = _hermite_e(n1, n2, v, A[2] - B[2], a, b, e1[2])
                if E1v == 0.0:
                    continue
                w1 = E1t * E1u * E1v
                for tau in range(l3 + l4 + 1):
                    E2t = _hermite_e(l3, l4, tau, C[0] - D[0], c, d, e2[0])
                    if E2t == 0.0:
                        continue
                    for nu in range(m3 + m4 + 1):
                        E2u = _hermite_e(m3, m4, nu, C[1] - D[1], c, d, e2[1])
                        if E2u == 0.0:
                            continue
                        for phi in range(n3 + n4 + 1):
                            E2v = _hermite_e(n3, n4, phi, C[2] - D[2], c, d, e2[2])
                            if E2v == 0.0:
                                continue
                            sign = -1.0 if (tau + nu + phi) % 2 else 1.0
                            total += (
                                w1
                                * E2t * E2u * E2v * sign
                                * _hermite_coulomb(
                                    t + tau, u + nu, v + phi, 0, alpha, P - Q, r_memo
                                )
                            )
    pref = 2.0 * math.pi ** 2.5 / (p * q * math.sqrt(p + q))
    return pref * total


# -- contracted, matrix-level API -----------------------------------------------


def _contract_1e(bfs: List[BasisFunction], prim_fn) -> np.ndarray:
    n = len(bfs)
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1):
            fi, fj = bfs[i], bfs[j]
            val = 0.0
            for ci, ai in zip(fi.coeffs, fi.exponents):
                for cj, aj in zip(fj.coeffs, fj.exponents):
                    val += ci * cj * prim_fn(ai, fi, aj, fj)
            out[i, j] = out[j, i] = val
    return out


def overlap_matrix(bfs: List[BasisFunction]) -> np.ndarray:
    """AO overlap matrix S."""
    return _contract_1e(
        bfs,
        lambda a, fi, b, fj: _overlap_prim(
            a, fi.lmn, fi.center, b, fj.lmn, fj.center
        ),
    )


def kinetic_matrix(bfs: List[BasisFunction]) -> np.ndarray:
    """AO kinetic-energy matrix T."""
    return _contract_1e(
        bfs,
        lambda a, fi, b, fj: _kinetic_prim(
            a, fi.lmn, fi.center, b, fj.lmn, fj.center
        ),
    )


def nuclear_attraction_matrix(
    bfs: List[BasisFunction], molecule: Molecule
) -> np.ndarray:
    """AO nuclear-attraction matrix V (includes the -Z factors)."""
    n = len(bfs)
    out = np.zeros((n, n))
    centers = [
        (atom.atomic_number, np.asarray(atom.position)) for atom in molecule.atoms
    ]
    for i in range(n):
        for j in range(i + 1):
            fi, fj = bfs[i], bfs[j]
            A = np.asarray(fi.center)
            B = np.asarray(fj.center)
            val = 0.0
            for ci, ai in zip(fi.coeffs, fi.exponents):
                for cj, aj in zip(fj.coeffs, fj.exponents):
                    for Z, Cpos in centers:
                        val -= Z * ci * cj * _nuclear_prim(
                            ai, fi.lmn, A, aj, fj.lmn, B, Cpos
                        )
            out[i, j] = out[j, i] = val
    return out


def core_hamiltonian(bfs: List[BasisFunction], molecule: Molecule) -> np.ndarray:
    """H_core = T + V."""
    return kinetic_matrix(bfs) + nuclear_attraction_matrix(bfs, molecule)


def eri_tensor(bfs: List[BasisFunction]) -> np.ndarray:
    """Two-electron integrals (ij|kl), chemists' notation, 8-fold
    symmetry exploited."""
    n = len(bfs)
    eri = np.zeros((n, n, n, n))

    def contracted(i: int, j: int, k: int, l: int) -> float:
        fi, fj, fk, fl = bfs[i], bfs[j], bfs[k], bfs[l]
        A = np.asarray(fi.center)
        B = np.asarray(fj.center)
        C = np.asarray(fk.center)
        D = np.asarray(fl.center)
        val = 0.0
        for ci, ai in zip(fi.coeffs, fi.exponents):
            for cj, aj in zip(fj.coeffs, fj.exponents):
                w = ci * cj
                for ck, ak in zip(fk.coeffs, fk.exponents):
                    for cl, al in zip(fl.coeffs, fl.exponents):
                        val += w * ck * cl * _eri_prim(
                            ai, fi.lmn, A,
                            aj, fj.lmn, B,
                            ak, fk.lmn, C,
                            al, fl.lmn, D,
                        )
        return val

    for i in range(n):
        for j in range(i + 1):
            ij = i * (i + 1) // 2 + j
            for k in range(n):
                for l in range(k + 1):
                    kl = k * (k + 1) // 2 + l
                    if ij < kl:
                        continue
                    v = contracted(i, j, k, l)
                    for a, b in ((i, j), (j, i)):
                        for c, d in ((k, l), (l, k)):
                            eri[a, b, c, d] = v
                            eri[c, d, a, b] = v
    return eri


def _dipole_prim(
    a: float,
    lmn1: Tuple[int, int, int],
    A: np.ndarray,
    b: float,
    lmn2: Tuple[int, int, int],
    B: np.ndarray,
    origin: np.ndarray,
    direction: int,
) -> float:
    """<prim_a| (r - origin)_direction |prim_b>.

    McMurchie-Davidson: the 1-D moment integral is
    E_1^{ij} + (P - C) E_0^{ij}, times sqrt(pi/p); the other two
    dimensions contribute plain overlaps.
    """
    p = a + b
    P = (a * A + b * B) / p
    total = 1.0
    for d in range(3):
        memo: Dict = {}
        if d == direction:
            e1 = _hermite_e(lmn1[d], lmn2[d], 1, A[d] - B[d], a, b, memo)
            e0 = _hermite_e(lmn1[d], lmn2[d], 0, A[d] - B[d], a, b, memo)
            total *= e1 + (P[d] - origin[d]) * e0
        else:
            total *= _hermite_e(lmn1[d], lmn2[d], 0, A[d] - B[d], a, b, memo)
    return total * (math.pi / p) ** 1.5


def dipole_matrices(
    bfs: List[BasisFunction], origin: Sequence[float] = (0.0, 0.0, 0.0)
) -> np.ndarray:
    """Electric-dipole integral matrices: shape (3, n, n), one matrix
    per Cartesian direction, relative to ``origin`` (Bohr)."""
    n = len(bfs)
    origin = np.asarray(origin, dtype=float)
    out = np.zeros((3, n, n))
    for d in range(3):
        for i in range(n):
            for j in range(i + 1):
                fi, fj = bfs[i], bfs[j]
                A = np.asarray(fi.center)
                B = np.asarray(fj.center)
                val = 0.0
                for ci, ai in zip(fi.coeffs, fi.exponents):
                    for cj, aj in zip(fj.coeffs, fj.exponents):
                        val += ci * cj * _dipole_prim(
                            ai, fi.lmn, A, aj, fj.lmn, B, origin, d
                        )
                out[d, i, j] = out[d, j, i] = val
    return out
