"""Coupled-cluster downfolding (paper §2).

Two variants, mirroring the paper's taxonomy:

**Hermitian downfolding** (unitary-CC based, Eq. 2): the external
cluster operator sigma_ext (anti-Hermitian, seeded from MP2 doubles
that touch external orbitals) is integrated out through a truncated
commutator expansion

    H_eff = H + [H, sigma] + 1/2 [[H, sigma], sigma] + ...

computed *exactly in Pauli-string algebra* (products of Pauli strings
stay Pauli strings, so each commutator is closed-form bit arithmetic;
see ``repro.ir.pauli``).  The transformed operator is then projected
onto the active register by freezing every external qubit at its
reference occupation, yielding a Hermitian effective Hamiltonian on
2 * n_active qubits that downstream VQE consumes — this is the
"downfolded 6-orbital H2O" object of Fig. 5.

**Non-Hermitian downfolding** (Eq. 1): Loewdin/Brillouin–Wigner
partitioning in the determinant basis,
``H_eff(E) = H_AA + H_AX (E - H_XX)^{-1} H_XA``, solved
self-consistently in E.  Its fixed point reproduces the *full-space*
eigenvalue exactly with only active-space dimensionality — the
equivalence theorem the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.chem.fermion import FermionOperator
from repro.chem.hamiltonian import MolecularHamiltonian
from repro.chem.mappings import jordan_wigner
from repro.chem.mp2 import MP2Result, run_mp2
from repro.ir.pauli import PauliString, PauliSum

__all__ = [
    "DownfoldingResult",
    "external_sigma",
    "project_onto_reference",
    "hermitian_downfold",
    "nonhermitian_downfold_energy",
]


@dataclass
class DownfoldingResult:
    """Hermitian downfolding output.

    ``effective_hamiltonian`` acts on the active qubits only and
    carries the commutator corrections; ``bare_hamiltonian`` is the
    plain frozen-reference projection (order 0), kept for ablation —
    the accuracy gap between the two is the value downfolding adds.
    """

    effective_hamiltonian: PauliSum
    bare_hamiltonian: PauliSum
    num_active_qubits: int
    num_electrons: int
    sigma_norm1: float
    order: int
    active_spin_orbitals: List[int]


def external_sigma(
    mp2: MP2Result,
    active_spin_orbitals: Sequence[int],
) -> FermionOperator:
    """Anti-Hermitian external cluster operator sigma_ext.

    Built from MP2 doubles amplitudes t_ijab restricted to excitations
    with at least one index *outside* the active spin-orbital set:
    sigma = T2_ext - T2_ext^dagger with
    T2 = sum_{i<j, a<b} t_ijab a+_a a+_b a_j a_i.
    """
    act = set(active_spin_orbitals)
    n_occ = mp2.num_occupied_so
    t2 = mp2.t2
    n_virt = t2.shape[2]
    t_op = FermionOperator()
    for i in range(n_occ):
        for j in range(i + 1, n_occ):
            for a_rel in range(n_virt):
                a = n_occ + a_rel
                for b_rel in range(a_rel + 1, n_virt):
                    b = n_occ + b_rel
                    amp = t2[i, j, a_rel, b_rel]
                    if abs(amp) < 1e-12:
                        continue
                    if {i, j, a, b} <= act:
                        continue  # internal excitation: stays for VQE
                    t_op = t_op + FermionOperator.term(
                        [(a, True), (b, True), (j, False), (i, False)], amp
                    )
    return (t_op - t_op.dagger()).normal_ordered()


def project_onto_reference(
    operator: PauliSum,
    active_qubits: Sequence[int],
    occupied_external: Sequence[int],
) -> PauliSum:
    """Freeze non-active qubits at their reference occupation.

    Every Pauli term factors as P_active (x) P_external; the external
    factor is replaced by its reference expectation value:
    0 for any X/Y factor, (-1)^{#Z on occupied} otherwise.  Active
    qubits are re-labelled 0..len(active)-1 preserving order.
    """
    n = operator.num_qubits
    act = list(active_qubits)
    act_set = set(act)
    occ_ext = set(occupied_external)
    if occ_ext & act_set:
        raise ValueError("occupied_external overlaps active qubits")
    ext_mask = 0
    for q in range(n):
        if q not in act_set:
            ext_mask |= 1 << q
    occ_mask = 0
    for q in occ_ext:
        occ_mask |= 1 << q

    pos = {q: k for k, q in enumerate(act)}
    out = PauliSum.zero(len(act))
    for (x, z), coeff in operator.terms.items():
        if x & ext_mask:
            continue  # X/Y on a frozen qubit: zero reference expectation
        sign = -1.0 if bin(z & occ_mask).count("1") % 2 else 1.0
        new_x = new_z = 0
        zx_act = (x | z) & ~ext_mask
        for q in act:
            bit = 1 << q
            if x & bit:
                new_x |= 1 << pos[q]
            if z & bit:
                new_z |= 1 << pos[q]
        out.add_term(PauliString(len(act), new_x, new_z), coeff * sign)
    return out.chop(1e-14)


def _bch(
    h: PauliSum, sigma: PauliSum, order: int, threshold: float
) -> PauliSum:
    """Truncated BCH series H + [H,s] + 1/2 [[H,s],s] + ... (Eq. 2)."""
    heff = h
    nested = h
    factorial = 1.0
    for k in range(1, order + 1):
        nested = nested.commutator(sigma).chop(threshold)
        factorial *= k
        heff = heff + nested * (1.0 / factorial)
    return heff.chop(threshold)


def hermitian_downfold(
    full_hamiltonian: MolecularHamiltonian,
    mo_energies: np.ndarray,
    core_orbitals: Sequence[int],
    active_orbitals: Sequence[int],
    order: int = 2,
    threshold: float = 1e-9,
) -> DownfoldingResult:
    """Hermitian CC downfolding onto an active space.

    Parameters
    ----------
    full_hamiltonian:
        The full MO-basis Hamiltonian (all orbitals).
    mo_energies:
        Orbital energies (for MP2 external amplitudes).
    core_orbitals / active_orbitals:
        Spatial-orbital partitions; anything else is a frozen virtual.
    order:
        Commutator truncation order of Eq. 2 (paper uses 2).
    threshold:
        Pauli-coefficient chop threshold between commutator levels.
    """
    n_spatial = full_hamiltonian.num_orbitals
    n_so = full_hamiltonian.num_spin_orbitals
    core = sorted(core_orbitals)
    active = sorted(active_orbitals)
    frozen_virtual = [
        p for p in range(n_spatial) if p not in core and p not in active
    ]
    active_so = [2 * p + s for p in active for s in (0, 1)]
    active_so.sort()
    core_so = sorted(2 * p + s for p in core for s in (0, 1))

    h_q = full_hamiltonian.to_qubit("jordan-wigner")
    mp2 = run_mp2(full_hamiltonian, np.asarray(mo_energies))
    sigma_f = external_sigma(mp2, active_so)
    sigma_q = jordan_wigner(sigma_f, n_so)

    bare = project_onto_reference(h_q, active_so, core_so)
    if sigma_q.num_terms == 0 or order == 0:
        heff_act = bare
    else:
        heff_full = _bch(h_q, sigma_q, order, threshold)
        heff_act = project_onto_reference(heff_full, active_so, core_so)

    return DownfoldingResult(
        effective_hamiltonian=heff_act,
        bare_hamiltonian=bare,
        num_active_qubits=len(active_so),
        num_electrons=full_hamiltonian.num_electrons - 2 * len(core),
        sigma_norm1=sigma_q.norm1(),
        order=order,
        active_spin_orbitals=active_so,
    )


def nonhermitian_downfold_energy(
    full_hamiltonian: MolecularHamiltonian,
    core_orbitals: Sequence[int],
    active_orbitals: Sequence[int],
    energy_guess: Optional[float] = None,
    tol: float = 1e-10,
    max_iterations: int = 100,
) -> Tuple[float, int]:
    """Self-consistent Loewdin (Brillouin–Wigner) downfolded energy.

    Partitions the particle-number sector of the determinant space
    into active-reference determinants (external orbitals at reference
    occupation) and the rest, and iterates
    ``E <- min eig [ H_AA + H_AX (E - H_XX)^{-1} H_XA ]``.
    The fixed point equals the exact full-space eigenvalue (the
    equivalence theorem of paper §2) — returned with the iteration
    count.
    """
    from repro.chem.fci import sector_indices

    n_spatial = full_hamiltonian.num_orbitals
    core = sorted(core_orbitals)
    active = sorted(active_orbitals)
    active_so = sorted(2 * p + s for p in active for s in (0, 1))
    core_so = sorted(2 * p + s for p in core for s in (0, 1))
    n_so = full_hamiltonian.num_spin_orbitals

    h_q = full_hamiltonian.to_qubit("jordan-wigner")
    mat = h_q.to_sparse()
    n_elec = full_hamiltonian.num_electrons
    sector = sector_indices(n_so, num_particles=n_elec, sz=0)

    core_mask = sum(1 << q for q in core_so)
    ext_virtual_mask = sum(
        1 << q
        for q in range(n_so)
        if q not in set(active_so) and q not in set(core_so)
    )
    in_a = ((sector & core_mask) == core_mask) & ((sector & ext_virtual_mask) == 0)
    idx_a = sector[in_a]
    idx_x = sector[~in_a]
    if idx_a.size == 0:
        raise ValueError("active reference block is empty")

    h_aa = mat[np.ix_(idx_a, idx_a)].toarray()
    h_ax = mat[np.ix_(idx_a, idx_x)].toarray()
    h_xa = mat[np.ix_(idx_x, idx_a)].toarray()
    h_xx = mat[np.ix_(idx_x, idx_x)].toarray()

    e = float(energy_guess) if energy_guess is not None else float(
        np.min(np.real(np.diag(h_aa)))
    )
    its = 0
    for its in range(1, max_iterations + 1):
        try:
            resolvent = np.linalg.solve(
                e * np.eye(h_xx.shape[0]) - h_xx, h_xa
            )
        except np.linalg.LinAlgError:
            e += 1e-6  # nudge off a singular resolvent
            continue
        heff = h_aa + h_ax @ resolvent
        # Non-Hermitian effective matrix: take the lowest real eigenvalue.
        vals = np.linalg.eigvals(heff)
        vals = vals[np.abs(vals.imag) < 1e-8].real
        e_new = float(np.min(vals))
        if abs(e_new - e) < tol:
            return e_new, its
        e = e_new
    return e, its
