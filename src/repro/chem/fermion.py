"""Fermionic operator algebra: sums of normal-ordered ladder strings.

``FermionOperator`` represents sums of products of creation (``p^``)
and annihilation (``p``) operators with complex coefficients, with the
canonical anticommutation relations

    {a_p, a+_q} = delta_pq,   {a_p, a_q} = {a+_p, a+_q} = 0.

Normal ordering (creations left of annihilations, indices descending)
is implemented through iterative application of the anticommutators,
so operator identities (e.g. number-operator idempotency, commutators
of excitations) hold exactly.  This is the algebra the UCCSD generator
construction and the downfolding sigma_ext build on before mapping to
qubits.

Terms are keyed by tuples of ``(orbital, is_creation)`` pairs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["FermionOperator"]

LadderTerm = Tuple[Tuple[int, bool], ...]


class FermionOperator:
    """A linear combination of ladder-operator products."""

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Dict[LadderTerm, complex]] = None):
        self.terms: Dict[LadderTerm, complex] = dict(terms or {})

    # -- constructors ----------------------------------------------------------

    @classmethod
    def zero(cls) -> "FermionOperator":
        return cls()

    @classmethod
    def identity(cls, coeff: complex = 1.0) -> "FermionOperator":
        return cls({(): complex(coeff)})

    @classmethod
    def term(
        cls, ops: Sequence[Tuple[int, bool]], coeff: complex = 1.0
    ) -> "FermionOperator":
        """One ladder string, e.g. ``term([(2, True), (0, False)])`` for
        ``a+_2 a_0``."""
        return cls({tuple(ops): complex(coeff)})

    @classmethod
    def from_string(cls, spec: str, coeff: complex = 1.0) -> "FermionOperator":
        """Parse ``"2^ 0"`` style strings (^ marks creation)."""
        ops: List[Tuple[int, bool]] = []
        for token in spec.split():
            if token.endswith("^"):
                ops.append((int(token[:-1]), True))
            else:
                ops.append((int(token), False))
        return cls.term(ops, coeff)

    # -- algebra ------------------------------------------------------------------

    def __add__(self, other: "FermionOperator") -> "FermionOperator":
        out = FermionOperator(dict(self.terms))
        for k, v in other.terms.items():
            new = out.terms.get(k, 0.0) + v
            if new == 0:
                out.terms.pop(k, None)
            else:
                out.terms[k] = new
        return out

    def __sub__(self, other: "FermionOperator") -> "FermionOperator":
        return self + (other * -1.0)

    def __mul__(self, other) -> "FermionOperator":
        if isinstance(other, FermionOperator):
            out: Dict[LadderTerm, complex] = {}
            for t1, c1 in self.terms.items():
                for t2, c2 in other.terms.items():
                    key = t1 + t2
                    new = out.get(key, 0.0) + c1 * c2
                    if new == 0:
                        out.pop(key, None)
                    else:
                        out[key] = new
            return FermionOperator(out)
        return FermionOperator(
            {k: v * other for k, v in self.terms.items() if v * other != 0}
        )

    def __rmul__(self, scalar: complex) -> "FermionOperator":
        return self * scalar

    def __neg__(self) -> "FermionOperator":
        return self * -1.0

    def dagger(self) -> "FermionOperator":
        """Hermitian adjoint: reverse each string, toggle dagger flags,
        conjugate coefficients."""
        out: Dict[LadderTerm, complex] = {}
        for term, coeff in self.terms.items():
            adj = tuple((orb, not dag) for orb, dag in reversed(term))
            out[adj] = out.get(adj, 0.0) + coeff.conjugate()
        return FermionOperator(out)

    def commutator(self, other: "FermionOperator") -> "FermionOperator":
        return (self * other - other * self).normal_ordered()

    # -- normal ordering --------------------------------------------------------------

    def normal_ordered(self) -> "FermionOperator":
        """Rewrite with all creations left of annihilations, creation
        indices strictly descending, annihilation indices strictly
        ascending; duplicate adjacent equal ladder ops vanish."""
        out = FermionOperator()
        for term, coeff in self.terms.items():
            out = out + _normal_order_term(list(term), coeff)
        out.chop(0.0)
        return out

    def chop(self, threshold: float = 1e-12) -> "FermionOperator":
        dead = [k for k, v in self.terms.items() if abs(v) <= threshold]
        for k in dead:
            del self.terms[k]
        return self

    # -- inspection ----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[Tuple[LadderTerm, complex]]:
        return iter(self.terms.items())

    @property
    def max_orbital(self) -> int:
        m = -1
        for term in self.terms:
            for orb, _ in term:
                m = max(m, orb)
        return m

    def is_hermitian(self, atol: float = 1e-10) -> bool:
        diff = (self - self.dagger()).normal_ordered()
        return all(abs(c) <= atol for c in diff.terms.values())

    def is_anti_hermitian(self, atol: float = 1e-10) -> bool:
        s = (self + self.dagger()).normal_ordered()
        return all(abs(c) <= atol for c in s.terms.values())

    def conserves_particle_number(self) -> bool:
        """True if every term has equal creation and annihilation counts."""
        for term in self.terms:
            ups = sum(1 for _, dag in term if dag)
            if 2 * ups != len(term):
                return False
        return True

    def __repr__(self) -> str:
        parts = []
        for term, coeff in list(self.terms.items())[:4]:
            ops = " ".join(f"{o}^" if d else f"{o}" for o, d in term)
            parts.append(f"({coeff:.4g}) [{ops}]")
        more = "" if len(self.terms) <= 4 else f" + ... ({len(self.terms)} terms)"
        return " + ".join(parts) + more if parts else "0"


def _normal_order_term(ops: List[Tuple[int, bool]], coeff: complex) -> FermionOperator:
    """Normal-order one ladder string via bubble passes with the CAR.

    Each adjacent transposition either anticommutes (sign flip) or, for
    ``a_p a+_p``, produces the contraction ``1 - a+_p a_p`` (two terms,
    handled by a small work stack).
    """
    result = FermionOperator()
    stack: List[Tuple[List[Tuple[int, bool]], complex]] = [(ops, coeff)]
    while stack:
        term, c = stack.pop()
        changed = True
        dead = False
        while changed and not dead:
            changed = False
            for i in range(len(term) - 1):
                (o1, d1), (o2, d2) = term[i], term[i + 1]
                if not d1 and d2:  # annihilation left of creation
                    if o1 == o2:
                        # a_p a+_p = 1 - a+_p a_p
                        rest_identity = term[:i] + term[i + 2:]
                        stack.append((rest_identity, c))
                        term = term[:i] + [term[i + 1], term[i]] + term[i + 2:]
                        c = -c
                    else:
                        term[i], term[i + 1] = term[i + 1], term[i]
                        c = -c
                    changed = True
                    break
                if d1 == d2:
                    if o1 == o2:
                        dead = True  # a+ a+ or a a with equal index -> 0
                        break
                    # canonical order: creations descending, annihilations ascending
                    want_swap = (d1 and o1 < o2) or (not d1 and o1 > o2)
                    if want_swap:
                        term[i], term[i + 1] = term[i + 1], term[i]
                        c = -c
                        changed = True
                        break
        if not dead and c != 0:
            key = tuple(term)
            new = result.terms.get(key, 0.0) + c
            if new == 0:
                result.terms.pop(key, None)
            else:
                result.terms[key] = new
    return result
