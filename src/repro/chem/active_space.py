"""Automatic active-space selection from MP2 natural orbitals.

The downfolding workflow (paper §2) needs an active/external orbital
partition as input.  Choosing it by hand works for water; a production
pipeline selects it from the correlated one-particle density: orbitals
whose MP2 natural-occupation numbers are close to 2 (inert core) or 0
(inert virtual) belong to the external space, and the fractional ones
carry the correlation the active space must keep.

``select_active_space`` ranks spatial orbitals by their distance from
integer occupation and returns the (core, active) partition for a
requested active-space size — reproducing the hand-picked choice for
the paper's H2O system (O 1s frozen, 6 active orbitals) from first
principles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.chem.hamiltonian import MolecularHamiltonian
from repro.chem.mp2 import run_mp2

__all__ = ["ActiveSpaceSelection", "mp2_natural_occupations", "select_active_space"]


@dataclass
class ActiveSpaceSelection:
    """A chosen partition plus the evidence behind it."""

    core_orbitals: List[int]
    active_orbitals: List[int]
    frozen_virtuals: List[int]
    natural_occupations: np.ndarray
    total_electrons: int = 0

    @property
    def num_active_electrons(self) -> int:
        """Electrons left for the active space after freezing the core."""
        return self.total_electrons - 2 * len(self.core_orbitals)


def mp2_natural_occupations(
    hamiltonian: MolecularHamiltonian, mo_energies: np.ndarray
) -> np.ndarray:
    """Diagonal of the MP2 one-particle density in spatial orbitals.

    n_i = 2 - 1/2 sum_{jab} |t_ijab|^2   (occupied depletion)
    n_a =     1/2 sum_{ijb} |t_ijab|^2   (virtual population)

    computed from spin-orbital amplitudes and folded back to spatial
    orbitals (alpha + beta).
    """
    mp2 = run_mp2(hamiltonian, mo_energies)
    t2 = mp2.t2
    n_occ_so = mp2.num_occupied_so
    n_so = mp2.num_spin_orbitals
    n_spatial = n_so // 2

    occ_so = np.zeros(n_so)
    occ_so[:n_occ_so] = 1.0
    # depletion of occupied spin orbital i
    dep = 0.5 * np.einsum("ijab->i", np.abs(t2) ** 2)
    # population of virtual spin orbital a
    pop = 0.5 * np.einsum("ijab->a", np.abs(t2) ** 2)
    occ_so[:n_occ_so] -= dep
    occ_so[n_occ_so:] += pop

    spatial = np.zeros(n_spatial)
    for p in range(n_spatial):
        spatial[p] = occ_so[2 * p] + occ_so[2 * p + 1]
    return spatial


def select_active_space(
    hamiltonian: MolecularHamiltonian,
    mo_energies: np.ndarray,
    num_active_orbitals: int,
) -> ActiveSpaceSelection:
    """Pick the ``num_active_orbitals`` most fractionally-occupied
    orbitals as active; inert occupied orbitals become core, inert
    virtuals are dropped.

    The returned core/active lists are sorted and directly usable as
    the ``core_orbitals``/``active_orbitals`` arguments of
    ``repro.chem.downfolding.hermitian_downfold``.
    """
    n_spatial = hamiltonian.num_orbitals
    if not 1 <= num_active_orbitals <= n_spatial:
        raise ValueError("bad active-space size")
    n_occ = hamiltonian.num_electrons // 2
    occ = mp2_natural_occupations(hamiltonian, np.asarray(mo_energies))
    # distance from inert occupation (2 for i < n_occ, 0 for virtuals)
    inert = np.where(np.arange(n_spatial) < n_occ, 2.0, 0.0)
    fractionality = np.abs(occ - inert)
    ranked = list(np.argsort(-fractionality))
    active = sorted(int(p) for p in ranked[:num_active_orbitals])
    core = sorted(p for p in range(n_occ) if p not in active)
    frozen_virt = sorted(
        p for p in range(n_occ, n_spatial) if p not in active
    )
    return ActiveSpaceSelection(
        core_orbitals=core,
        active_orbitals=active,
        frozen_virtuals=frozen_virt,
        natural_occupations=occ,
        total_electrons=hamiltonian.num_electrons,
    )
