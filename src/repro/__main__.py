"""Entry point: ``python -m repro``."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout went away mid-print (e.g. piped into `head`); exit
        # quietly with the conventional SIGPIPE status.
        sys.stderr.close()
        sys.exit(141)
