"""Job specifications for the campaign server.

A :class:`JobSpec` is everything a tenant submits: the physics problem
(molecule family + geometry + basis), the driver (plain VQE or
ADAPT-VQE), the solver knobs (iterations, seed), and the service-level
fields (tenant, priority, deadline).  Two hashes are derived from it:

* :meth:`JobSpec.content_key` — SHA-256 over the *physics-relevant*
  fields only.  Two tenants submitting the same problem collide on
  this key, which is exactly what the content-addressed result store
  wants: the second submission completes instantly from the first
  one's stored result, regardless of who asked.
* :meth:`JobSpec.family_key` — the content key with the geometry
  parameter removed.  Jobs in one family are the same molecule scanned
  across geometries, so a converged parameter vector at a nearby
  geometry is an excellent warm start (``repro.core.scan``'s
  incremental-optimization insight, applied fleet-wide).

Specs serialize to plain JSON with a schema version so the write-ahead
journal and the submission inbox survive software upgrades with a
clear error instead of a silent misparse.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "SPEC_VERSION",
    "JobState",
    "TERMINAL_STATES",
    "JobSpec",
    "SpecError",
    "qubits_for_molecule",
    "estimate_job_memory",
    "estimate_group_memory",
]

SPEC_VERSION = 1

# Fields that define the *problem* (shared across tenants -> dedup) as
# opposed to the service-level envelope (tenant, priority, deadline).
_CONTENT_FIELDS = (
    "kind",
    "molecule",
    "geometry",
    "basis",
    "optimizer",
    "max_iterations",
    "seed",
)


class SpecError(ValueError):
    """A submitted job spec is malformed or from an unknown schema."""


class JobState:
    """Lifecycle states of a job inside the server.

    ``QUEUED -> RUNNING -> {SUCCEEDED, FAILED, TIMED_OUT}`` is the
    normal path; ``REJECTED`` (admission control) and ``SHED``
    (overload) are terminal without ever running.
    """

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    TIMED_OUT = "timed_out"
    REJECTED = "rejected"
    SHED = "shed"


TERMINAL_STATES = frozenset(
    {
        JobState.SUCCEEDED,
        JobState.FAILED,
        JobState.TIMED_OUT,
        JobState.REJECTED,
        JobState.SHED,
    }
)


@dataclass(frozen=True)
class JobSpec:
    """One VQE/ADAPT campaign request.

    Parameters
    ----------
    tenant:
        Submitting tenant; admission control and metrics are per-tenant.
    kind:
        ``"vqe"`` (plain UCCSD VQE campaign) or ``"adapt"`` (ADAPT-VQE).
    molecule:
        Molecule family name (``h2``, ``h4``, ``lih``, ``h2o``).
    geometry:
        Optional scan parameter (bond length / spacing in Angstrom)
        passed to the molecule factory; ``None`` = family default.
    basis:
        Basis set name (informational; the factories are STO-3G).
    optimizer:
        Optimizer name (informational; drivers pick their defaults).
    max_iterations:
        ADAPT iteration cap (ignored for plain VQE).
    seed:
        Determinism seed threaded into the drivers.
    priority:
        Higher = more important; overload sheds the lowest first.
    deadline_s:
        Wall-clock budget from *admission*; exceeded -> ``TIMED_OUT``.
    timeout_s:
        Budget on cumulative *execution* time; exceeded -> ``TIMED_OUT``.
    """

    tenant: str
    kind: str = "vqe"
    molecule: str = "h2"
    geometry: Optional[float] = None
    basis: str = "sto-3g"
    optimizer: str = "default"
    max_iterations: int = 8
    seed: int = 0
    priority: int = 0
    deadline_s: Optional[float] = None
    timeout_s: Optional[float] = None
    version: int = field(default=SPEC_VERSION)

    def __post_init__(self) -> None:
        if self.kind not in ("vqe", "adapt"):
            raise SpecError(f"unknown job kind {self.kind!r}; 'vqe' or 'adapt'")
        if not self.tenant:
            raise SpecError("tenant must be non-empty")
        if self.max_iterations < 1:
            raise SpecError("max_iterations must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise SpecError("deadline_s must be positive")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise SpecError("timeout_s must be positive")

    # -- content addressing ---------------------------------------------------

    def _content_payload(self, with_geometry: bool = True) -> Dict[str, Any]:
        payload = {f: getattr(self, f) for f in _CONTENT_FIELDS}
        if not with_geometry:
            payload.pop("geometry")
        return payload

    def content_key(self) -> str:
        """SHA-256 over the physics fields — the dedup/store address."""
        blob = json.dumps(self._content_payload(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    def family_key(self) -> str:
        """Content key minus geometry — the warm-start neighborhood."""
        blob = json.dumps(self._content_payload(with_geometry=False), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    def physics_key(self) -> str:
        """Batching compatibility key: jobs whose (kind, molecule,
        geometry, basis) agree share one Hamiltonian, reference state,
        and ansatz, so their evaluation requests stack into one
        batched-plan sweep even when seeds, optimizers, or tenants
        differ.  Coarser than :meth:`content_key` (which also hashes
        solver knobs) on purpose — the whole point of the evaluation
        broker is that *distinct* campaigns batch together."""
        payload = {
            "kind": self.kind,
            "molecule": self.molecule,
            "geometry": self.geometry,
            "basis": self.basis,
        }
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    def class_key(self) -> str:
        """Failure-domain key for the circuit breaker: jobs of one
        (kind, molecule, basis) class fail together when e.g. the
        chemistry stage for that molecule is broken."""
        return f"{self.kind}:{self.molecule}:{self.basis}"

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        if not isinstance(payload, dict):
            raise SpecError("job spec must be a JSON object")
        version = payload.get("version", None)
        if version != SPEC_VERSION:
            raise SpecError(
                f"job spec version {version!r} not supported "
                f"(this server speaks version {SPEC_VERSION})"
            )
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(payload) - known
        if unknown:
            raise SpecError(f"job spec has unknown field(s): {sorted(unknown)}")
        try:
            return cls(**payload)
        except TypeError as err:
            raise SpecError(f"malformed job spec: {err}") from err


_QUBITS_BY_MOLECULE = {"h2": 4, "h4": 8, "lih": 12, "h2o": 14}
# Measured compiled-observable pass counts on the serve build path
# (STO-3G, no downfolding); drive the dominant term of the capacity
# model (see repro.obs.memory).
_PASSES_BY_MOLECULE = {"h2": 2, "h4": 27, "lih": 84, "h2o": 162}
# UCCSD generator counts (== pool size) per family: each generator
# compiles to one single-pass observable of 24 * 2^n bytes, which at
# these widths rivals the Hamiltonian itself.  Unknown molecules use 0
# — for the oversized-job rejection path the Hamiltonian term alone is
# already orders of magnitude over any rank budget.
_GENERATORS_BY_MOLECULE = {"h2": 3, "h4": 26, "lih": 92, "h2o": 140}


def qubits_for_molecule(name: str) -> int:
    """Register width of a molecule family on the serve build path
    (STO-3G, no downfolding: one qubit per spin orbital).

    Hydrogen chains follow the ``h<N>`` -> 2N-qubit rule (N atoms, one
    STO-3G spatial orbital each), so capacity planning can price chains
    the factories don't build yet — an ``h17`` submission estimates as
    34 qubits and is rejected by memory-aware admission long before the
    chemistry stage would reject the name.  Unknown names fall back to
    8 qubits (the historical server default).
    """
    key = name.lower()
    known = _QUBITS_BY_MOLECULE.get(key)
    if known is not None:
        return known
    if key.startswith("h") and key[1:].isdigit():
        return 2 * int(key[1:])
    return 8


def estimate_job_memory(spec: "JobSpec") -> int:
    """Predicted peak resident bytes of one job (capacity model).

    Wraps :func:`repro.obs.memory.estimate_statevector_job_bytes` with
    the serve-path calibration: register width from the molecule table
    and the measured compiled-observable pass count where known.
    Validated against measured ledger peaks in ``tests/test_memory.py``
    (±10% at 8–14 qubits).
    """
    from repro.obs.memory import estimate_statevector_job_bytes

    key = spec.molecule.lower()
    n = qubits_for_molecule(spec.molecule)
    passes = _PASSES_BY_MOLECULE.get(key)
    return int(
        estimate_statevector_job_bytes(
            n,
            kind=spec.kind,
            compiled_passes=passes,
            generator_terms=_GENERATORS_BY_MOLECULE.get(key, 0),
        )["total"]
    )


def estimate_group_memory(specs) -> int:
    """Predicted peak bytes of a same-physics batch group (the unit the
    group-aware scheduler places).  The members share one compiled
    plan/observable/Hamiltonian, so the batch costs one job's total
    plus B-1 extra amplitude rows — see
    :func:`repro.obs.memory.estimate_batched_group_bytes`."""
    from repro.obs.memory import estimate_batched_group_bytes

    specs = list(specs)
    if not specs:
        return 0
    spec = specs[0]
    key = spec.molecule.lower()
    return estimate_batched_group_bytes(
        qubits_for_molecule(spec.molecule),
        len(specs),
        kind=spec.kind,
        compiled_passes=_PASSES_BY_MOLECULE.get(key),
        generator_terms=_GENERATORS_BY_MOLECULE.get(key, 0),
    )


def resolve_molecule(name: str, geometry: Optional[float] = None):
    """Build the molecule for a spec (factories take one scan param)."""
    from repro.chem.molecule import h2, h2o, h4_chain, lih

    factories = {"h2": h2, "h2o": h2o, "h4": h4_chain, "lih": lih}
    try:
        factory = factories[name.lower()]
    except KeyError:
        raise SpecError(
            f"unknown molecule {name!r}; choose from {sorted(factories)}"
        ) from None
    if geometry is None:
        return factory()
    if name.lower() == "h2o":
        raise SpecError("h2o does not take a scalar geometry parameter")
    return factory(float(geometry))
