"""VQE-as-a-service: the crash-safe multi-tenant campaign server.

The package turns one-shot campaign runs (:mod:`repro.core.campaign`)
into a long-running service:

* :mod:`repro.serve.spec` — job specifications with content addressing
  (dedup across tenants, warm-start families across geometries).
* :mod:`repro.serve.journal` — the CRC-checked write-ahead journal
  whose replay is idempotent by sequence number.
* :mod:`repro.serve.store` — content-addressed results, warm-start
  index, and the shared compiled-problem cache.
* :mod:`repro.serve.admission` — per-tenant bounded queues,
  backpressure, priority shedding.
* :mod:`repro.serve.server` — the tick loop tying it together:
  dispatch (LPT over surviving ranks), interleaved execution,
  deadlines, retries with budgets and circuit breakers, drain mode,
  and health/metrics publication.

Entry points: ``repro serve``, ``repro submit``, ``repro status``.
"""

from repro.serve.admission import AdmissionController, AdmissionDecision, TenantPolicy
from repro.serve.journal import Journal, JournalCorruptionError, JournalRecord
from repro.serve.server import CampaignServer, JobRecord, ServerConfig, load_state_view
from repro.serve.spec import (
    SPEC_VERSION,
    TERMINAL_STATES,
    JobSpec,
    JobState,
    SpecError,
)
from repro.serve.store import ContentStore, ProblemCache

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TenantPolicy",
    "Journal",
    "JournalCorruptionError",
    "JournalRecord",
    "CampaignServer",
    "JobRecord",
    "ServerConfig",
    "load_state_view",
    "SPEC_VERSION",
    "TERMINAL_STATES",
    "JobSpec",
    "JobState",
    "SpecError",
    "ContentStore",
    "ProblemCache",
]
