"""Crash-safe write-ahead journal for the campaign server.

Every state transition the server makes (submission accepted, job
started, job finished, rank lost, ...) is appended to a JSONL journal
*before* the transition takes effect, so a hard kill at any instant
loses at most the record being written.  Records carry:

* ``seq`` — a strictly increasing sequence number.  Replay is
  idempotent by construction: a fold over the journal ignores any
  record whose ``seq`` it has already applied, so replaying a prefix
  twice (or re-reading an overlapping journal after a crash) cannot
  double-apply a transition.  ``tests/test_serve.py`` pins this with a
  Hypothesis property.
* ``crc`` — CRC-32 of the canonical record body.  A torn final line
  (the classic crash-mid-append artifact) is detected, dropped on
  replay, and truncated away before the next append so it can never
  merge with a later record; corruption *before* the tail is a real
  integrity violation and raises :class:`JournalCorruptionError`.

The journal is the source of truth for job lifecycle; bulky state
(checkpointed parameters, converged results) lives next door in the
content-addressed store and the per-job checkpoint directories, which
the journal references by key.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["JournalCorruptionError", "JournalRecord", "Journal"]


class JournalCorruptionError(RuntimeError):
    """A record before the journal tail failed its integrity check."""


def _canonical(body: Dict[str, Any]) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


@dataclass
class JournalRecord:
    """One journaled state transition."""

    seq: int
    type: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_line(self) -> str:
        body = {"seq": self.seq, "type": self.type, "payload": self.payload}
        blob = _canonical(body)
        crc = zlib.crc32(blob.encode())
        body["crc"] = crc
        return json.dumps(body, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_line(cls, line: str) -> "JournalRecord":
        obj = json.loads(line)
        if not isinstance(obj, dict):
            raise ValueError("journal record is not an object")
        crc = obj.pop("crc", None)
        blob = _canonical(
            {"seq": obj["seq"], "type": obj["type"], "payload": obj["payload"]}
        )
        if crc != zlib.crc32(blob.encode()):
            raise ValueError("journal record checksum mismatch")
        return cls(seq=int(obj["seq"]), type=str(obj["type"]), payload=obj["payload"])


class Journal:
    """Append-only JSONL write-ahead journal.

    Parameters
    ----------
    path:
        Journal file; created (with parents) on first append.
    fsync:
        Force records to disk on every append.  Durable but slow —
        the soak test turns it on, the unit tests leave it off.
    """

    def __init__(self, path: str, fsync: bool = False):
        self.path = path
        self.fsync = fsync
        self._next_seq = 1
        self._fh = None
        self._tail_repair: Optional[Tuple[str, int]] = None
        existing = self.replay()
        if existing:
            self._next_seq = existing[-1].seq + 1

    # -- writing --------------------------------------------------------------

    def _repair_tail(self) -> None:
        """Make the file safe to append to.

        A torn final line would otherwise merge with the next appended
        record ('a' mode writes directly after the partial bytes),
        producing one unparseable line with valid records after it —
        which the *following* replay would reject as mid-file
        corruption.  So before the first append: truncate a torn tail
        back to the end of the last intact record, and complete a
        missing final newline.  Deliberately lazy (write path only), so
        read-only users (``repro status``, the soak checker) never
        mutate the journal.
        """
        if self._tail_repair is None or not os.path.isfile(self.path):
            self._tail_repair = None
            return
        kind, offset = self._tail_repair
        with open(self.path, "r+b") as fh:
            if kind == "truncate":
                fh.truncate(offset)
            else:  # "newline": last record is intact but unterminated
                fh.seek(0, os.SEEK_END)
                fh.write(b"\n")
        self._tail_repair = None

    def _ensure_open(self):
        if self._fh is None:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            self._repair_tail()
            self._fh = open(self.path, "a")
        return self._fh

    def append(self, type: str, **payload: Any) -> JournalRecord:
        """Durably append one record and return it."""
        record = JournalRecord(seq=self._next_seq, type=type, payload=payload)
        fh = self._ensure_open()
        fh.write(record.to_line() + "\n")
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
        self._next_seq += 1
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- reading --------------------------------------------------------------

    def replay(self) -> List[JournalRecord]:
        """Read every intact record, dropping a torn tail.

        A record that fails to parse or checksum is tolerated only if
        nothing valid follows it (crash mid-append); otherwise the file
        was corrupted in place and :class:`JournalCorruptionError` is
        raised — restoring from a good copy beats silently resuming
        from a hole in history.

        Scanning also schedules a tail repair (applied before the next
        append, see :meth:`_repair_tail`) so a tolerated torn tail is
        physically removed rather than left to merge with future
        records.
        """
        self._tail_repair = None
        if not os.path.isfile(self.path):
            return []
        with open(self.path, "rb") as fh:
            data = fh.read()
        records: List[JournalRecord] = []
        bad_at: Optional[int] = None
        valid_end = 0  # byte offset just past the last intact line
        offset = 0
        lineno = 0
        for raw in data.splitlines(keepends=True):
            lineno += 1
            offset += len(raw)
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                if bad_at is None:
                    valid_end = offset
                continue
            try:
                rec = JournalRecord.from_line(line)
            except (ValueError, KeyError) as err:
                if bad_at is None:
                    bad_at = lineno
                    last_err = err
                continue
            if bad_at is not None:
                raise JournalCorruptionError(
                    f"journal {self.path!r} line {bad_at} is corrupt "
                    f"({last_err}) but intact records follow it — "
                    "mid-file corruption, refusing to replay"
                )
            valid_end = offset
            if records and rec.seq <= records[-1].seq:
                # duplicate/out-of-order append (e.g. overlapping
                # replay written back); idempotent fold: skip it
                continue
            records.append(rec)
        if bad_at is not None:
            self._tail_repair = ("truncate", valid_end)
        elif data and not data.endswith(b"\n"):
            self._tail_repair = ("newline", len(data))
        return records

    def __iter__(self) -> Iterator[JournalRecord]:
        return iter(self.replay())
