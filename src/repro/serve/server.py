"""The multi-tenant campaign server (``repro serve``).

``CampaignServer`` turns the single-run recovery machinery of
``repro.core.campaign`` into a long-running, crash-safe service:

* **Submission** arrives through :meth:`CampaignServer.submit` (in
  process) or a spool-directory inbox (``<state_dir>/inbox/*.json``,
  written atomically by ``repro submit``) — file-based ingestion is
  itself crash-safe: a submission survives either fully journaled or
  still in the inbox, never half-admitted.
* **Admission control** (:mod:`repro.serve.admission`) bounds every
  queue per tenant and globally, rejects with explicit backpressure,
  and fails fast on job classes whose circuit breaker is open.
* **Execution** interleaves all running campaigns step by step
  (one ADAPT iteration per tick per job; VQE campaigns run through
  ``CampaignRunner.run_vqe`` with its internal evaluation-level
  checkpoints), so N campaigns are genuinely in flight at once and a
  kill can land mid-anything.
* **Crash safety**: every transition is written to the write-ahead
  journal first; restart replays the journal (idempotently — records
  are sequence-numbered), reloads terminal results from the
  content-addressed store, and requeues in-flight jobs, which resume
  from their ``CampaignRunner`` checkpoints with no completed work
  redone.
* **Deadlines, retries, degradation**: per-job deadlines/timeouts are
  enforced between steps; failures retry under a shared
  ``RetryPolicy`` guarded by a global ``RetryBudget`` and per-class
  ``CircuitBreaker``s; simulated rank loss shrinks the worker pool and
  the queued work is re-LPT'd over survivors via ``BatchScheduler``;
  overload sheds the lowest-priority queued jobs; drain mode finishes
  in-flight work while rejecting new submissions.
* **Observability**: health/readiness and per-tenant counters are
  published through ``repro.obs`` and mirrored to an atomically
  written ``status.json`` for out-of-process ``repro status``; every
  state transition additionally lands on the durable structured event
  bus (``<state_dir>/events.jsonl``, :mod:`repro.obs.events`), which
  feeds the SLO engine and the ``repro top`` dashboard, and periodic
  metrics snapshots (``metrics.jsonl``) give out-of-process pollers
  counter/histogram state without scraping the process.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.obs import events as obs_events
from repro.core.campaign import CampaignRunner
from repro.hpc.faults import FaultInjector, FaultSpec
from repro.hpc.scheduler import BatchScheduler, Job
from repro.serve.admission import AdmissionController, TenantPolicy
from repro.serve.broker import BrokeredEstimator, EvaluationBroker
from repro.serve.journal import Journal, JournalRecord
from repro.serve.spec import (
    TERMINAL_STATES,
    JobSpec,
    JobState,
    SpecError,
    estimate_group_memory,
    estimate_job_memory,
    qubits_for_molecule,
)
from repro.serve.store import ContentStore, ProblemCache
from repro.utils.retry import CircuitBreaker, RetryBudget, RetryPolicy

__all__ = ["ServerConfig", "JobRecord", "CampaignServer", "load_state_view"]


@dataclass
class ServerConfig:
    """Tuning knobs of one server instance."""

    num_ranks: int = 4
    machine: str = "perlmutter"
    checkpoint_period: int = 1
    max_restarts: int = 3
    max_job_attempts: int = 3
    global_queue_limit: int = 64
    default_tenant_policy: TenantPolicy = field(default_factory=TenantPolicy)
    tenant_policies: Dict[str, TenantPolicy] = field(default_factory=dict)
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 60.0
    retry_budget_capacity: float = 32.0
    retry_budget_refill_per_s: float = 1.0
    retry_seed: int = 0
    default_timeout_s: Optional[float] = None
    warm_start: bool = True
    adapt_energy_tolerance: float = 1e-6
    adapt_gradient_tolerance: float = 1e-4
    fault_specs: List[FaultSpec] = field(default_factory=list)
    fault_seed: int = 0
    fsync: bool = False
    clock: Any = None  # Callable[[], float]; default time.monotonic
    event_log_max_bytes: int = 4_000_000
    metrics_snapshot_period: int = 5  # ticks between metrics.jsonl writes
    # memory budget of one worker rank; jobs whose predicted peak
    # (repro.serve.spec.estimate_job_memory) exceeds it are rejected at
    # admission — they could never run anywhere in the fleet
    rank_memory_bytes: int = 16 << 30
    # overload bound on *queued* predicted bytes: the queue may hold up
    # to this many fleets' worth of resident memory before the server
    # sheds by memory pressure (rank loss shrinks the pool, so losing
    # ranks sheds memory-hungry queues even when the count bound holds)
    memory_queue_factor: int = 4
    # cross-campaign batched execution (the evaluation broker): VQE
    # campaigns with identical physics stack their evaluations into
    # one (B, 2^n) batched-plan sweep per wave.  ``batch_size`` caps
    # the rows per sweep; ``repro serve --no-batch`` disables the
    # broker entirely (every campaign evaluates synchronously).
    batch_enabled: bool = True
    batch_size: int = 32


@dataclass
class JobRecord:
    """Server-side view of one job's lifecycle."""

    job_id: str
    spec: JobSpec
    state: str = JobState.QUEUED
    submitted_seq: int = 0
    submission_id: Optional[str] = None
    rank: Optional[int] = None
    attempts: int = 0
    energy: Optional[float] = None
    detail: str = ""
    dedup_hit: bool = False
    warm_started: bool = False
    resumed: bool = False
    admitted_at: float = 0.0
    exec_s: float = 0.0
    next_eligible: float = 0.0
    flight_verdict: Optional[str] = None
    est_bytes: int = 0  # capacity model's predicted peak for this job

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.spec.tenant,
            "kind": self.spec.kind,
            "molecule": self.spec.molecule,
            "geometry": self.spec.geometry,
            "priority": self.spec.priority,
            "state": self.state,
            "rank": self.rank,
            "attempts": self.attempts,
            "energy": self.energy,
            "detail": self.detail,
            "dedup_hit": self.dedup_hit,
            "warm_started": self.warm_started,
            "resumed": self.resumed,
            "flight_verdict": self.flight_verdict,
            "est_bytes": self.est_bytes,
        }


class _ServerState:
    """The journal fold: jobs + fleet facts rebuilt from records.

    ``apply`` ignores any record whose ``seq`` has already been
    applied, which makes replay idempotent for overlapping prefixes —
    the property ``tests/test_serve.py`` verifies with Hypothesis.
    """

    def __init__(self) -> None:
        self.jobs: Dict[str, JobRecord] = {}
        self.order: List[str] = []
        self.lost_ranks: set = set()
        self.draining = False
        self.dispatches = 0
        self.submission_ids: set = set()
        self.last_seq = 0

    def apply(self, rec: JournalRecord) -> None:
        if rec.seq <= self.last_seq:
            return  # already applied — idempotent replay
        self.last_seq = rec.seq
        p = rec.payload
        if rec.type in ("admitted", "rejected"):
            spec = JobSpec.from_dict(p["spec"])
            try:
                est_bytes = estimate_job_memory(spec)
            except Exception:  # noqa: BLE001 — estimate is advisory
                est_bytes = 0
            job = JobRecord(
                job_id=p["job_id"],
                spec=spec,
                state=(
                    JobState.QUEUED if rec.type == "admitted" else JobState.REJECTED
                ),
                submitted_seq=rec.seq,
                submission_id=p.get("submission_id"),
                detail=p.get("reason", ""),
                est_bytes=est_bytes,
            )
            self.jobs[job.job_id] = job
            self.order.append(job.job_id)
            if job.submission_id:
                self.submission_ids.add(job.submission_id)
            return
        if rec.type == "rank_lost":
            self.lost_ranks.add(int(p["rank"]))
            return
        if rec.type == "drain":
            self.draining = True
            return
        if rec.type == "recovered":
            return
        job = self.jobs.get(p.get("job_id", ""))
        if job is None:
            return  # record about a job we never saw admitted; ignore
        if rec.type == "started":
            job.state = JobState.RUNNING
            job.rank = p.get("rank")
            job.attempts = int(p.get("attempt", job.attempts))
            self.dispatches += 1
        elif rec.type in ("retry", "requeued"):
            job.state = JobState.QUEUED
            job.rank = None
            job.attempts = int(p.get("attempt", job.attempts))
            job.detail = p.get("reason", job.detail)
        elif rec.type == "completed":
            job.state = JobState.SUCCEEDED
            job.rank = None
            job.energy = p.get("energy")
            job.dedup_hit = bool(p.get("dedup", False))
            job.warm_started = bool(p.get("warm_started", False))
            job.resumed = bool(p.get("resumed", False))
        elif rec.type == "failed":
            job.state = JobState.FAILED
            job.rank = None
            job.detail = p.get("reason", "")
        elif rec.type == "timed_out":
            job.state = JobState.TIMED_OUT
            job.rank = None
            job.detail = p.get("reason", "")
        elif rec.type == "shed":
            job.state = JobState.SHED
            job.rank = None
            job.detail = p.get("reason", "")


class _JobExecution:
    """Volatile driver of one running campaign (checkpoints persist)."""

    def __init__(
        self,
        job: JobRecord,
        problem: Dict[str, Any],
        ckpt_dir: str,
        config: ServerConfig,
        warm_x0: Optional[np.ndarray],
        estimator_factory: Optional[Callable[[], Any]] = None,
    ):
        self.job = job
        self.problem = problem
        self.config = config
        self.warm_x0 = warm_x0
        # non-None only when the server routes this campaign through
        # the evaluation broker; the factory builds the job's
        # BrokeredEstimator at step time (worker thread)
        self.estimator_factory = estimator_factory
        # brokered campaigns step in worker threads so their
        # evaluations can interleave into shared batches
        self.brokered = (
            estimator_factory is not None
            and job.spec.kind == "vqe"
            and problem.get("ansatz") is not None
        )
        self.runner = CampaignRunner(
            ckpt_dir,
            checkpoint_period=config.checkpoint_period,
            max_restarts=config.max_restarts,
        )
        self._adapt = None
        self._adapt_state = None
        if job.spec.kind == "adapt":
            from repro.core.adapt import AdaptVQE

            self._adapt = AdaptVQE(
                problem["hamiltonian"],
                problem["pool"],
                problem["reference"],
                max_iterations=job.spec.max_iterations,
                gradient_tolerance=config.adapt_gradient_tolerance,
                energy_tolerance=config.adapt_energy_tolerance,
                flight_context={
                    "job_id": job.job_id,
                    "tenant": job.spec.tenant,
                },
            )
            loaded = self.runner.load_adapt_state(self._adapt)
            self.job.resumed = loaded is not None
            self._adapt_state = loaded or self._adapt.initial_state()

    def step(self) -> Optional[Dict[str, Any]]:
        """Advance one unit of work; a dict result means *done*."""
        if self._adapt is not None:
            return self._step_adapt()
        return self._run_vqe()

    def _step_adapt(self) -> Optional[Dict[str, Any]]:
        st = self._adapt_state
        if not st.converged and st.iteration < self._adapt.max_iterations:
            with obs.span(
                "serve.job_step", job=self.job.job_id, iteration=st.iteration + 1
            ):
                self._adapt.step(st)
            if st.converged or st.iteration % self.config.checkpoint_period == 0:
                self.runner.save_adapt_state(st)
        if st.converged or st.iteration >= self._adapt.max_iterations:
            self.runner.save_adapt_state(st)
            result = self._adapt.result(st)
            return {
                "energy": float(result.energy),
                "parameters": [float(x) for x in st.parameters],
                "iterations": int(st.iteration),
                "kind": "adapt",
                "flight_verdict": self._adapt.flight.verdict,
            }
        return None

    def _run_vqe(self) -> Dict[str, Any]:
        from repro.core.vqe import VQE

        flight_context = {
            "job_id": self.job.job_id,
            "tenant": self.job.spec.tenant,
        }
        ansatz = self.problem.get("ansatz")
        if ansatz is not None:
            # circuit mode over the physics-shared trotterized-UCCSD
            # circuit: every same-physics job executes the SAME
            # compiled plan, which is what lets the broker stack their
            # evaluations; fd_gradient fuses value + gradient into one
            # 2P+1-row sweep per optimizer iterate.  Batched and
            # sequential serving both take this exact path (only the
            # estimator differs), so their trajectories — and final
            # energies — agree to floating-point noise.
            estimator = (
                self.estimator_factory()
                if self.estimator_factory is not None
                else None
            )
            vqe = VQE(
                self.problem["hamiltonian"],
                ansatz=ansatz,
                estimator=estimator,
                fd_gradient=True,
                flight_context=flight_context,
            )
        else:
            vqe = VQE(
                self.problem["hamiltonian"],
                generators=self.problem["generators"],
                reference_state=self.problem["reference"],
                flight_context=flight_context,
            )
        x0 = self.warm_x0
        if x0 is not None:
            self.job.warm_started = True
        elif vqe.num_parameters:
            # seeded multi-start jitter: distinct seeds explore
            # distinct basins deterministically, so same-molecule
            # campaigns submitted with different seeds are genuinely
            # independent optimizations (not one trajectory replayed
            # N times) — the honest workload for batched serving
            rng = np.random.default_rng(self.job.spec.seed)
            x0 = 0.02 * rng.standard_normal(vqe.num_parameters)
        with obs.span("serve.job_step", job=self.job.job_id, kind="vqe"):
            campaign = self.runner.run_vqe(vqe, initial_parameters=x0)
        self.job.resumed = campaign.resumed_from is not None
        return {
            "energy": float(campaign.energy),
            "parameters": [
                float(x) for x in campaign.result.optimal_parameters
            ],
            "evaluations": int(campaign.result.num_function_evaluations),
            "kind": "vqe",
            "flight_verdict": (
                vqe.flight.verdict if vqe.flight is not None else None
            ),
        }


class CampaignServer:
    """Crash-safe multi-tenant VQE/ADAPT campaign server."""

    def __init__(self, state_dir: str, config: Optional[ServerConfig] = None):
        self.state_dir = state_dir
        self.config = config or ServerConfig()
        os.makedirs(state_dir, exist_ok=True)
        self.inbox_dir = os.path.join(state_dir, "inbox")
        os.makedirs(self.inbox_dir, exist_ok=True)
        self._now = self.config.clock or time.monotonic
        # the durable event bus comes up first so every transition —
        # including recovery itself — lands in the log; installing it
        # as the process-global bus routes library-level emissions
        # (flight recorder, fault injector, campaign runner) here too
        self.events = obs_events.EventBus(
            path=os.path.join(state_dir, "events.jsonl"),
            max_bytes=self.config.event_log_max_bytes,
        )
        obs_events.set_bus(self.events)
        self.journal = Journal(
            os.path.join(state_dir, "journal.jsonl"), fsync=self.config.fsync
        )
        self.store = ContentStore(os.path.join(state_dir, "store"))
        self.problems = ProblemCache()
        self.admission = AdmissionController(
            global_queue_limit=self.config.global_queue_limit,
            default_policy=self.config.default_tenant_policy,
            tenant_policies=dict(self.config.tenant_policies),
        )
        self.retry_policy = RetryPolicy(
            max_attempts=max(2, self.config.max_job_attempts),
            seed=self.config.retry_seed,
        )
        self.retry_budget = RetryBudget(
            capacity=self.config.retry_budget_capacity,
            refill_per_s=self.config.retry_budget_refill_per_s,
        )
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.fault_injector = (
            FaultInjector(self.config.fault_specs, seed=self.config.fault_seed)
            if self.config.fault_specs
            else None
        )
        self.broker = (
            EvaluationBroker(batch_size=self.config.batch_size)
            if self.config.batch_enabled
            else None
        )
        self.executions: Dict[str, _JobExecution] = {}
        # (tenant, state) gauge label pairs published last round, so
        # pairs that disappear (drained/idle tenants) are zeroed rather
        # than frozen at their last value
        self._published_tenant_states: set = set()
        self.ticks = 0
        self.shed_count = 0
        self.dedup_hits = 0
        self.state = _ServerState()
        self._job_counter = 0
        self._recover()

    # -- recovery -------------------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal and requeue whatever was in flight."""
        records = self.journal.replay()
        for rec in records:
            self.state.apply(rec)
        # counter only backs jNNNNN ids allocated by submit(); synthetic
        # ids (malformed-submission "bad-<id>" rejections) don't count
        self._job_counter = sum(
            1 for jid in self.state.jobs if jid.startswith("j")
        )
        # deadlines run on this process's clock (time.monotonic by
        # default — an arbitrary since-boot epoch, incomparable across
        # processes), so replayed jobs' admission times are meaningless
        # here.  Re-base every non-terminal job to recovery time so a
        # restart never spuriously times out resumed work; the deadline
        # window restarts from recovery, which is the lenient choice.
        now = self._now()
        for job in self.state.jobs.values():
            if not job.terminal:
                job.admitted_at = now
        in_flight = [
            j for j in self.state.jobs.values() if j.state == JobState.RUNNING
        ]
        for job in in_flight:
            # the journal said RUNNING but this is a fresh process: the
            # old run died.  Its checkpoints are on disk; requeue.
            rec = self.journal.append(
                "requeued",
                job_id=job.job_id,
                attempt=job.attempts,
                reason="server restart",
            )
            self.state.apply(rec)
        if records:
            rec = self.journal.append(
                "recovered",
                jobs=len(self.state.jobs),
                requeued=len(in_flight),
                lost_ranks=sorted(self.state.lost_ranks),
            )
            self.state.apply(rec)
            self.events.emit(
                "server.recovered",
                jobs=len(self.state.jobs),
                requeued=len(in_flight),
                lost_ranks=sorted(self.state.lost_ranks) or None,
            )
        if obs.enabled() and in_flight:
            obs.inc(
                "repro_serve_jobs_resumed_total",
                len(in_flight),
                help="In-flight jobs requeued after a server restart",
            )

    # -- derived views --------------------------------------------------------

    @property
    def jobs(self) -> Dict[str, JobRecord]:
        return self.state.jobs

    @property
    def alive_ranks(self) -> List[int]:
        return [
            k
            for k in range(self.config.num_ranks)
            if k not in self.state.lost_ranks
        ]

    @property
    def draining(self) -> bool:
        return self.state.draining

    def _jobs_in(self, state: str) -> List[JobRecord]:
        return [
            self.state.jobs[jid]
            for jid in self.state.order
            if self.state.jobs[jid].state == state
        ]

    @property
    def idle(self) -> bool:
        return not self._jobs_in(JobState.QUEUED) and not self._jobs_in(
            JobState.RUNNING
        )

    def _tenant_counts(self, tenant: str) -> Tuple[int, int]:
        queued = sum(
            1
            for j in self.state.jobs.values()
            if j.spec.tenant == tenant and j.state == JobState.QUEUED
        )
        running = sum(
            1
            for j in self.state.jobs.values()
            if j.spec.tenant == tenant and j.state == JobState.RUNNING
        )
        return queued, running

    def _breaker(self, class_key: str) -> CircuitBreaker:
        br = self.breakers.get(class_key)
        if br is None:
            br = CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
            )
            self.breakers[class_key] = br
        return br

    # -- submission -----------------------------------------------------------

    def submit(
        self, spec: JobSpec, submission_id: Optional[str] = None
    ) -> JobRecord:
        """Admit or reject one submission; always returns a JobRecord
        (state ``queued`` or ``rejected``)."""
        now = self._now()
        if submission_id and submission_id in self.state.submission_ids:
            # duplicate delivery (inbox re-scan after a crash): return
            # the already-journaled job instead of double-admitting
            for jid in reversed(self.state.order):
                if self.state.jobs[jid].submission_id == submission_id:
                    return self.state.jobs[jid]
        self._job_counter += 1
        job_id = f"j{self._job_counter:05d}-{spec.content_key()[:8]}"
        tenant_queued, _ = self._tenant_counts(spec.tenant)
        total_queued = len(self._jobs_in(JobState.QUEUED))
        breaker = self._breaker(spec.class_key())
        try:
            job_bytes: Optional[int] = estimate_job_memory(spec)
        except Exception:  # noqa: BLE001 — unpriceable spec: skip the check
            job_bytes = None
        decision = self.admission.decide(
            spec.tenant,
            tenant_queued=tenant_queued,
            total_queued=total_queued,
            draining=self.draining,
            # read-only check: admission is not an execution, so it
            # must not flip open->half_open or consume the probe —
            # the state-transitioning allow() runs at dispatch time
            breaker_open=breaker.is_open(now),
            job_bytes=job_bytes,
            rank_capacity_bytes=self.config.rank_memory_bytes,
        )
        if decision.admitted:
            rec = self.journal.append(
                "admitted",
                job_id=job_id,
                spec=spec.to_dict(),
                submission_id=submission_id,
            )
        else:
            rec = self.journal.append(
                "rejected",
                job_id=job_id,
                spec=spec.to_dict(),
                submission_id=submission_id,
                reason=decision.reason,
            )
        self.state.apply(rec)
        job = self.state.jobs[job_id]
        job.admitted_at = now
        self.events.emit(
            "job.admitted" if decision.admitted else "job.rejected",
            job_id=job_id,
            tenant=spec.tenant,
            kind=spec.kind,
            molecule=spec.molecule,
            priority=spec.priority,
            reason=decision.reason or None,
        )
        if obs.enabled():
            obs.inc(
                "repro_serve_submissions_total",
                help="Submissions received, by tenant and outcome",
                labels={
                    "tenant": spec.tenant,
                    "outcome": "admitted" if decision.admitted else "rejected",
                },
            )
        return job

    def _poll_inbox(self) -> int:
        """Ingest spooled submissions (atomic files from ``repro
        submit``).  Journal-then-delete: a crash between the two means
        the file is re-scanned and recognized as a duplicate."""
        ingested = 0
        try:
            names = sorted(os.listdir(self.inbox_dir))
        except OSError:
            return 0
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.inbox_dir, name)
            submission_id = name[: -len(".json")]
            if submission_id in self.state.submission_ids:
                os.remove(path)
                continue
            try:
                with open(path) as fh:
                    spec = JobSpec.from_dict(json.load(fh))
            except (json.JSONDecodeError, OSError, SpecError) as err:
                # malformed submission: journal the rejection under a
                # synthetic spec so the submitter sees *why*
                rec = self.journal.append(
                    "rejected",
                    job_id=f"bad-{submission_id}",
                    spec=JobSpec(tenant="unknown").to_dict(),
                    submission_id=submission_id,
                    reason=f"malformed submission: {err}",
                )
                self.state.apply(rec)
                os.remove(path)
                continue
            self.submit(spec, submission_id=submission_id)
            os.remove(path)
            ingested += 1
        return ingested

    # -- degradation ----------------------------------------------------------

    def inject_rank_loss(self, rank: int) -> None:
        """Kill one simulated rank (tests / demos call this directly;
        configured ``FaultSpec``s arrive through the same path)."""
        if rank in self.state.lost_ranks or rank >= self.config.num_ranks:
            return
        rec = self.journal.append("rank_lost", rank=rank)
        self.state.apply(rec)
        requeued = 0
        # jobs running on the dead rank: requeue (their checkpoints
        # survive, so only the since-last-checkpoint slice is redone)
        for job in self._jobs_in(JobState.RUNNING):
            if job.rank == rank:
                self.executions.pop(job.job_id, None)
                r = self.journal.append(
                    "requeued",
                    job_id=job.job_id,
                    attempt=job.attempts,
                    reason=f"rank {rank} lost",
                )
                self.state.apply(r)
                requeued += 1
        self.events.emit(
            "rank.lost",
            rank=rank,
            alive=len(self.alive_ranks),
            requeued=requeued or None,
        )
        if obs.enabled():
            obs.inc(
                "repro_serve_ranks_lost_total", help="Simulated worker ranks lost"
            )

    def _check_rank_faults(self, rank: int) -> None:
        """Consult the fault injector at dispatch time.  Any rank it
        kills (the dispatch target or another) lands in
        ``state.lost_ranks``, which the dispatch loop re-checks before
        every start."""
        if self.fault_injector is None:
            return
        dead = self.fault_injector.check_batch_faults(self.state.dispatches, rank)
        if dead is not None:
            self.inject_rank_loss(dead)

    def _shed_overload(self) -> None:
        """Degraded fleet => shrunken effective queue bound; shed the
        lowest-priority queued jobs beyond it.  Two pressure axes:
        *count* (the classic shrunken queue limit) and *memory* (the
        queue's predicted resident bytes must fit
        ``memory_queue_factor`` fleets of surviving ranks) — losing a
        rank therefore sheds memory-hungry queues even when the job
        count is fine."""
        alive = len(self.alive_ranks)
        if alive >= self.config.num_ranks:
            return
        effective = max(
            1,
            (self.config.global_queue_limit * alive) // self.config.num_ranks,
        )
        queued = self._jobs_in(JobState.QUEUED)
        # full shed ranking (lowest priority first, newest first within
        # a priority); count victims are a prefix, memory pressure then
        # extends the prefix until the survivors' bytes fit the pool
        ranked = self.admission.shed_victims(
            queued,
            len(queued),
            priority_of=lambda j: j.spec.priority,
            age_of=lambda j: j.submitted_seq,
        )
        n_count = max(0, len(queued) - effective)
        byte_pool = (
            alive * self.config.rank_memory_bytes * self.config.memory_queue_factor
        )
        survivor_bytes = sum(j.est_bytes for j in ranked[n_count:])
        n_victims = n_count
        while survivor_bytes > byte_pool and n_victims < len(ranked):
            survivor_bytes -= ranked[n_victims].est_bytes
            n_victims += 1
        for i, job in enumerate(ranked[:n_victims]):
            if i < n_count:
                reason = (
                    f"overload: {len(queued)} queued > effective limit "
                    f"{effective} with {alive}/{self.config.num_ranks} ranks"
                )
                short = f"overload with {alive}/{self.config.num_ranks} ranks"
            else:
                reason = short = (
                    f"memory pressure: queued jobs predicted over "
                    f"{byte_pool} bytes with {alive}/"
                    f"{self.config.num_ranks} ranks"
                )
            rec = self.journal.append("shed", job_id=job.job_id, reason=reason)
            self.state.apply(rec)
            self.shed_count += 1
            self.events.emit(
                "job.shed",
                job_id=job.job_id,
                tenant=job.spec.tenant,
                priority=job.spec.priority,
                reason=short,
            )
            self._job_terminal_metrics(job)

    # -- scheduling + dispatch ------------------------------------------------

    def _estimate_job(self, job: JobRecord) -> Job:
        from repro.core.counting import uccsd_gate_count

        n = qubits_for_molecule(job.spec.molecule)
        gates = uccsd_gate_count(n) * max(1, job.spec.max_iterations)
        return Job(job.job_id, n, gates, mem_bytes=job.est_bytes)

    def _plan_placements(self) -> Dict[str, int]:
        """LPT-place dispatchable queued jobs over the surviving ranks
        (the re-LPT on rank loss falls out of re-planning here every
        tick with the current alive set)."""
        alive = self.alive_ranks
        if not alive:
            return {}
        now = self._now()
        running_ranks = {
            j.rank for j in self._jobs_in(JobState.RUNNING) if j.rank is not None
        }
        dispatchable = [
            j
            for j in self._jobs_in(JobState.QUEUED)
            if now >= j.next_eligible
        ]
        if not dispatchable:
            return {}
        # highest priority first, then submission order
        dispatchable.sort(key=lambda j: (-j.spec.priority, j.submitted_seq))
        scheduler = BatchScheduler(self.config.num_ranks, self.config.machine)
        if self.broker is not None:
            # LPT over *batch groups*: same-physics VQE jobs must land
            # on one rank to share a batched amplitude block, and the
            # group's memory is priced as a batch (one shared plan /
            # observable / Hamiltonian + B amplitude rows), far below
            # the sum of standalone estimates
            groups: Dict[str, List[JobRecord]] = {}
            singles: List[JobRecord] = []
            for j in dispatchable:
                if j.spec.kind == "vqe":
                    groups.setdefault(j.spec.physics_key(), []).append(j)
                else:
                    singles.append(j)
            group_list: List[Tuple[List[Job], int]] = []
            for pkey in sorted(groups):
                members = groups[pkey]
                group_list.append(
                    (
                        [self._estimate_job(j) for j in members],
                        estimate_group_memory([j.spec for j in members]),
                    )
                )
            for j in singles:
                est = self._estimate_job(j)
                group_list.append(([est], est.mem_bytes))
            schedule = scheduler.schedule_groups(
                group_list,
                available_ranks=alive,
                rank_capacity_bytes=self.config.rank_memory_bytes,
            )
        else:
            schedule = scheduler.schedule(
                [self._estimate_job(j) for j in dispatchable],
                available_ranks=alive,
                rank_capacity_bytes=self.config.rank_memory_bytes,
            )
        placements: Dict[str, int] = {}
        for rank, jobs in schedule.assignments.items():
            if rank in running_ranks:
                continue  # rank is busy this tick; its queue waits
            for j in jobs:
                placements.setdefault(j.name, rank)
        return placements

    def _dispatch(self) -> None:
        now = self._now()
        running_content = {
            self.state.jobs[jid].spec.content_key()
            for jid in self.state.order
            if self.state.jobs[jid].state == JobState.RUNNING
        }
        placements = self._plan_placements()
        # rank -> physics key of the batch group started there this
        # tick; None marks a rank occupied by non-joinable work (a
        # carried-over running job, an ADAPT step, or no-batch mode)
        busy: Dict[int, Optional[str]] = {
            j.rank: None
            for j in self._jobs_in(JobState.RUNNING)
            if j.rank is not None
        }
        for job in list(self._jobs_in(JobState.QUEUED)):
            if now < job.next_eligible:
                continue
            key = job.spec.content_key()
            # dedup: an identical problem already finished -> instant hit
            stored = self.store.get_result(key)
            if stored is not None:
                self._complete(job, stored, dedup=True)
                continue
            # an identical problem is running right now: wait for it
            # rather than computing it twice
            if key in running_content:
                continue
            joinable = self.broker is not None and job.spec.kind == "vqe"
            rank = placements.get(job.job_id)
            if rank is None:
                continue
            if rank in busy and not (
                joinable and busy[rank] == job.spec.physics_key()
            ):
                continue
            # execution gate on the class breaker: an open class holds
            # its queued jobs; past the cooldown this allow() is the
            # half-open probe (success/failure below closes/re-opens)
            if not self._breaker(job.spec.class_key()).allow(now):
                continue
            self._check_rank_faults(rank)
            if rank in self.state.lost_ranks:
                # the injector killed a rank mid-loop — possibly this
                # one, possibly earlier in the tick; placements are
                # stale, so never start on a dead rank.  Replan next
                # tick.
                continue
            self._start(job, rank)
            busy[rank] = job.spec.physics_key() if joinable else None
            running_content.add(key)

    def _start(self, job: JobRecord, rank: int) -> None:
        rec = self.journal.append(
            "started", job_id=job.job_id, rank=rank, attempt=job.attempts + 1
        )
        self.state.apply(rec)
        self.events.emit(
            "job.dispatched",
            job_id=job.job_id,
            tenant=job.spec.tenant,
            rank=rank,
            attempt=job.attempts,
            queue_latency_s=max(0.0, self._now() - job.admitted_at),
        )
        problem = self.problems.get(job.spec)
        warm_x0 = None
        if (
            self.config.warm_start
            and job.spec.kind == "vqe"
            and problem.get("generators")
            and not os.path.isfile(
                os.path.join(self._ckpt_dir(job), "vqe_params.json")
            )
        ):
            warm_x0 = self.store.warm_start(
                job.spec.family_key(),
                job.spec.geometry,
                len(problem["generators"]),
            )
        self.executions[job.job_id] = _JobExecution(
            job,
            problem,
            self._ckpt_dir(job),
            self.config,
            warm_x0,
            estimator_factory=self._estimator_factory(job),
        )

    def _estimator_factory(
        self, job: JobRecord
    ) -> Optional[Callable[[], BrokeredEstimator]]:
        """Broker-backed estimator builder for batchable campaigns
        (``None`` routes the job down the synchronous path)."""
        if self.broker is None or job.spec.kind != "vqe":
            return None
        broker, group_key, tag = self.broker, job.spec.physics_key(), job.job_id
        return lambda: BrokeredEstimator(broker, group_key, tag=tag)

    def _ckpt_dir(self, job: JobRecord) -> str:
        return os.path.join(self.state_dir, "jobs", job.job_id)

    # -- stepping + completion ------------------------------------------------

    def _step_running(self) -> None:
        """Advance every running campaign one unit of work.

        Brokered campaigns (batch-enabled VQE) step concurrently in
        worker threads whose evaluations collect at the broker, batch
        by physics, execute as shared sweeps, and resume — the
        collect -> batch -> execute -> resume tick.  Everything else
        (ADAPT, no-batch mode) steps synchronously as before.
        """
        runnable: List[Tuple[JobRecord, _JobExecution]] = []
        for job in list(self._jobs_in(JobState.RUNNING)):
            now = self._now()
            reason = self._deadline_violation(job, now)
            if reason is not None:
                self.executions.pop(job.job_id, None)
                rec = self.journal.append(
                    "timed_out", job_id=job.job_id, reason=reason
                )
                self.state.apply(rec)
                self.events.emit(
                    "job.timed_out",
                    job_id=job.job_id,
                    tenant=job.spec.tenant,
                    reason=reason,
                )
                self._job_terminal_metrics(job)
                continue
            execution = self.executions.get(job.job_id)
            if execution is None:
                # recovered job whose execution object died with the old
                # process; rebuild it (checkpoints make this cheap)
                self._start_recovered(job)
                execution = self.executions[job.job_id]
            runnable.append((job, execution))
        # getattr: tests monkeypatch executions with bare stubs
        brokered = [
            (j, e) for j, e in runnable if getattr(e, "brokered", False)
        ]
        for job, execution in runnable:
            if not getattr(execution, "brokered", False):
                self._step_one(job, execution)
        if brokered:
            self._step_batched(brokered)

    def _step_one(self, job: JobRecord, execution: _JobExecution) -> None:
        """The synchronous step path (pre-broker semantics)."""
        t0 = time.perf_counter()
        try:
            result = execution.step()
        except Exception as err:  # noqa: BLE001 — any failure retries
            job.exec_s += time.perf_counter() - t0
            self._handle_failure(job, err)
            return
        job.exec_s += time.perf_counter() - t0
        if result is not None:
            self._finish_success(job, execution, result)

    def _step_batched(
        self, pairs: List[Tuple[JobRecord, _JobExecution]]
    ) -> None:
        """Collect -> batch -> execute -> resume for brokered campaigns.

        Each campaign runs in a worker thread; the server thread pumps
        the broker, executing shared batched sweeps every time all
        workers are blocked on evaluation futures.  Completion and
        failure handling — journal writes included — happen back on
        the server thread after every worker has exited, in dispatch
        order, so the journal stays single-writer and deterministic.
        """
        assert self.broker is not None
        outcomes: Dict[str, Tuple[str, Any, float]] = {}

        def worker(job_id: str, execution: _JobExecution) -> None:
            t0 = time.perf_counter()
            try:
                result = execution.step()
                outcomes[job_id] = ("ok", result, time.perf_counter() - t0)
            except BaseException as err:  # noqa: BLE001 — judged on the server thread
                outcomes[job_id] = ("err", err, time.perf_counter() - t0)
            finally:
                self.broker.worker_finished()

        threads: List[threading.Thread] = []
        for job, execution in pairs:
            # register before starting so the pump can never observe a
            # transient zero-active state and return early
            self.broker.worker_started()
            threads.append(
                threading.Thread(
                    target=worker,
                    args=(job.job_id, execution),
                    name=f"serve-{job.job_id}",
                    daemon=True,
                )
            )
        with obs.span("serve.batch_tick", campaigns=len(pairs)):
            for t in threads:
                t.start()
            self.broker.pump()
            for t in threads:
                t.join()
        for job, execution in pairs:
            status, payload, dt = outcomes[job.job_id]
            job.exec_s += dt
            if status == "err":
                self._handle_failure(job, payload)
            elif payload is not None:
                self._finish_success(job, execution, payload)

    def _start_recovered(self, job: JobRecord) -> None:
        problem = self.problems.get(job.spec)
        self.executions[job.job_id] = _JobExecution(
            job,
            problem,
            self._ckpt_dir(job),
            self.config,
            None,
            estimator_factory=self._estimator_factory(job),
        )

    def _deadline_violation(self, job: JobRecord, now: float) -> Optional[str]:
        if (
            job.spec.deadline_s is not None
            and now - job.admitted_at > job.spec.deadline_s
        ):
            return (
                f"deadline exceeded ({now - job.admitted_at:.3f}s > "
                f"{job.spec.deadline_s}s since admission)"
            )
        timeout = (
            job.spec.timeout_s
            if job.spec.timeout_s is not None
            else self.config.default_timeout_s
        )
        if timeout is not None and job.exec_s > timeout:
            return f"execution budget exceeded ({job.exec_s:.3f}s > {timeout}s)"
        return None

    def _finish_success(
        self, job: JobRecord, execution: _JobExecution, result: Dict[str, Any]
    ) -> None:
        key = job.spec.content_key()
        self.store.put_result(key, result)
        if job.spec.kind == "vqe" and result.get("parameters"):
            self.store.add_warm_start(
                job.spec.family_key(),
                job.spec.geometry,
                np.asarray(result["parameters"], dtype=float),
            )
        self.executions.pop(job.job_id, None)
        self._complete(job, result, dedup=False)
        breaker = self._breaker(job.spec.class_key())
        before = breaker.state
        breaker.record_success()
        self._emit_breaker_transition(job.spec.class_key(), before, breaker.state)

    def _complete(
        self, job: JobRecord, result: Dict[str, Any], dedup: bool
    ) -> None:
        rec = self.journal.append(
            "completed",
            job_id=job.job_id,
            energy=result.get("energy"),
            content_key=job.spec.content_key(),
            dedup=dedup,
            warm_started=job.warm_started,
            resumed=job.resumed,
        )
        self.state.apply(rec)
        job.flight_verdict = result.get("flight_verdict")
        self.events.emit(
            "job.completed",
            job_id=job.job_id,
            tenant=job.spec.tenant,
            energy=result.get("energy"),
            dedup=dedup or None,
            flight_verdict=job.flight_verdict,
        )
        if dedup:
            self.dedup_hits += 1
            if obs.enabled():
                obs.inc(
                    "repro_serve_dedup_hits_total",
                    help="Jobs completed from the content-addressed store",
                )
        self._job_terminal_metrics(job)

    def _handle_failure(self, job: JobRecord, err: Exception) -> None:
        # job.attempts already counts this attempt (set by the
        # "started" record's fold)
        now = self._now()
        self.executions.pop(job.job_id, None)
        breaker = self._breaker(job.spec.class_key())
        breaker_before = breaker.state
        breaker.record_failure(now)
        self._emit_breaker_transition(
            job.spec.class_key(), breaker_before, breaker.state
        )
        retryable = (
            job.attempts < self.config.max_job_attempts
            and breaker.state != "open"
            and self.retry_budget.spend(now)
        )
        if retryable:
            delay = self.retry_policy.backoff_delay(job.attempts)
            job.next_eligible = now + delay
            rec = self.journal.append(
                "retry",
                job_id=job.job_id,
                attempt=job.attempts,
                delay_s=delay,
                reason=f"{type(err).__name__}: {err}",
            )
            self.state.apply(rec)
            self.events.emit(
                "job.retry",
                job_id=job.job_id,
                tenant=job.spec.tenant,
                attempt=job.attempts,
                delay_s=delay,
                reason=f"{type(err).__name__}: {err}",
            )
            if obs.enabled():
                obs.inc(
                    "repro_serve_job_retries_total",
                    help="Job-level retries after execution failures",
                    labels={"tenant": job.spec.tenant},
                )
        else:
            rec = self.journal.append(
                "failed",
                job_id=job.job_id,
                reason=f"{type(err).__name__}: {err} (attempt {job.attempts})",
            )
            self.state.apply(rec)
            self.events.emit(
                "job.failed",
                job_id=job.job_id,
                tenant=job.spec.tenant,
                attempt=job.attempts,
                reason=f"{type(err).__name__}: {err}",
            )
            self._job_terminal_metrics(job)

    def _emit_breaker_transition(
        self, class_key: str, before: str, after: str
    ) -> None:
        if after != before:
            self.events.emit(
                "breaker.transition",
                class_key=class_key,
                **{"from": before, "to": after},
            )

    def _job_terminal_metrics(self, job: JobRecord) -> None:
        if obs.enabled():
            obs.inc(
                "repro_serve_jobs_total",
                help="Jobs reaching a terminal state, by tenant and state",
                labels={"tenant": job.spec.tenant, "state": job.state},
            )

    # -- drain / lifecycle ----------------------------------------------------

    def drain(self) -> None:
        """Stop accepting work; in-flight jobs run to completion."""
        if not self.draining:
            rec = self.journal.append("drain")
            self.state.apply(rec)
            self.events.emit(
                "server.drain",
                queued=len(self._jobs_in(JobState.QUEUED)),
                running=len(self._jobs_in(JobState.RUNNING)),
            )

    def tick(self) -> None:
        """One scheduling round: ingest, shed, dispatch, advance."""
        t0 = time.perf_counter()
        if os.path.isfile(os.path.join(self.state_dir, "DRAIN")):
            self.drain()
        self._poll_inbox()
        self._shed_overload()
        self._dispatch()
        self._step_running()
        self.ticks += 1
        self.events.emit(
            "server.tick",
            tick=self.ticks,
            duration_s=time.perf_counter() - t0,
        )
        self._publish_health()
        if (
            obs.enabled()
            and self.config.metrics_snapshot_period > 0
            and self.ticks % self.config.metrics_snapshot_period == 0
        ):
            obs.get_registry().write_jsonl(
                os.path.join(self.state_dir, "metrics.jsonl")
            )

    def run(
        self,
        max_ticks: Optional[int] = None,
        stop_when_idle: bool = False,
        tick_sleep_s: float = 0.0,
    ) -> None:
        """Serve until drained, idle (if requested), or out of ticks."""
        while True:
            self.tick()
            if self.draining and self.idle:
                break
            if stop_when_idle and self.idle:
                break
            if max_ticks is not None and self.ticks >= max_ticks:
                break
            if tick_sleep_s:
                time.sleep(tick_sleep_s)
        self._publish_health()

    def close(self) -> None:
        self.journal.close()
        self.events.close()  # also un-installs the global bus

    # -- health / status ------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Readiness + fleet + per-tenant view (the ``/healthz`` body)."""
        by_state: Dict[str, int] = {}
        tenants: Dict[str, Dict[str, int]] = {}
        for job in self.state.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
            t = tenants.setdefault(job.spec.tenant, {})
            t[job.state] = t.get(job.state, 0) + 1
        alive = self.alive_ranks
        if self.draining:
            status = "draining"
        elif not alive:
            status = "unavailable"
        elif len(alive) < self.config.num_ranks:
            status = "degraded"
        else:
            status = "ready"
        ledger = obs.get_memory_ledger()
        memory = {
            "rank_memory_bytes": self.config.rank_memory_bytes,
            "fleet_capacity_bytes": len(alive) * self.config.rank_memory_bytes,
            "queued_est_bytes": sum(
                j.est_bytes for j in self._jobs_in(JobState.QUEUED)
            ),
            "running_est_bytes": sum(
                j.est_bytes for j in self._jobs_in(JobState.RUNNING)
            ),
            "ledger_live_bytes": ledger.live_bytes,
            "ledger_peak_bytes": ledger.peak_bytes,
        }
        batch: Dict[str, Any] = {"enabled": self.broker is not None}
        if self.broker is not None:
            batch.update(self.broker.stats())
        return {
            "status": status,
            "ready": bool(alive) and not self.draining,
            "ticks": self.ticks,
            "alive_ranks": alive,
            "lost_ranks": sorted(self.state.lost_ranks),
            "jobs": by_state,
            "tenants": tenants,
            "queue_depth": by_state.get(JobState.QUEUED, 0),
            "running": by_state.get(JobState.RUNNING, 0),
            "dedup_hits": self.dedup_hits,
            "shed": self.shed_count,
            "breakers": {k: b.state for k, b in self.breakers.items()},
            "retry_budget_tokens": self.retry_budget.tokens,
            "journal_seq": self.state.last_seq,
            "stored_results": self.store.num_results(),
            "memory": memory,
            "batch": batch,
        }

    def _publish_health(self) -> None:
        health = self.health()
        tmp = os.path.join(self.state_dir, "status.json.tmp")
        with open(tmp, "w") as fh:
            json.dump(
                {"health": health, "jobs": [
                    self.state.jobs[jid].to_dict() for jid in self.state.order
                ]},
                fh,
            )
        os.replace(tmp, os.path.join(self.state_dir, "status.json"))
        if obs.enabled():
            obs.gauge_set(
                "repro_serve_ready",
                1.0 if health["ready"] else 0.0,
                help="1 when the server is accepting and executing work",
            )
            obs.gauge_set(
                "repro_serve_queue_depth",
                float(health["queue_depth"]),
                help="Queued jobs",
            )
            obs.gauge_set(
                "repro_serve_alive_ranks",
                float(len(health["alive_ranks"])),
                help="Surviving worker ranks",
            )
            mem = health["memory"]
            obs.gauge_set(
                "repro_serve_fleet_memory_bytes",
                float(mem["fleet_capacity_bytes"]),
                help="Memory budget of the surviving rank pool",
            )
            obs.gauge_set(
                "repro_serve_queued_est_bytes",
                float(mem["queued_est_bytes"]),
                help="Capacity-model predicted bytes of queued jobs",
            )
            obs.gauge_set(
                "repro_serve_running_est_bytes",
                float(mem["running_est_bytes"]),
                help="Capacity-model predicted bytes of running jobs",
            )
            batch = health["batch"]
            if batch.get("enabled"):
                obs.gauge_set(
                    "repro_serve_batch_occupancy_mean",
                    float(batch.get("mean_occupancy", 0.0)),
                    help="Mean evaluation rows per executed batch group",
                )
            # per-tenant live-state gauges; only non-terminal states are
            # interesting live, and pairs that vanished since the last
            # publish are explicitly zeroed (a drained tenant's queue
            # gauge must read 0, not its last value forever)
            current: set = set()
            for tenant, states in health["tenants"].items():
                for state in (JobState.QUEUED, JobState.RUNNING):
                    count = states.get(state, 0)
                    if count:
                        current.add((tenant, state))
                        obs.gauge_set(
                            "repro_serve_tenant_jobs",
                            float(count),
                            help="Live (non-terminal) jobs by tenant and state",
                            labels={"tenant": tenant, "state": state},
                        )
            for tenant, state in self._published_tenant_states - current:
                obs.gauge_set(
                    "repro_serve_tenant_jobs",
                    0.0,
                    labels={"tenant": tenant, "state": state},
                )
            self._published_tenant_states = current
            obs.inc("repro_serve_ticks_total", help="Server scheduling rounds")


def load_state_view(state_dir: str) -> Dict[str, Any]:
    """Read-only snapshot for ``repro status``: journal fold + the last
    published health, without constructing a server."""
    journal = Journal(os.path.join(state_dir, "journal.jsonl"))
    state = _ServerState()
    for rec in journal.replay():
        state.apply(rec)
    health: Optional[Dict[str, Any]] = None
    status_path = os.path.join(state_dir, "status.json")
    if os.path.isfile(status_path):
        try:
            with open(status_path) as fh:
                health = json.load(fh).get("health")
        except (json.JSONDecodeError, OSError):
            health = None
    by_state: Dict[str, int] = {}
    for job in state.jobs.values():
        by_state[job.state] = by_state.get(job.state, 0) + 1
    return {
        "jobs": [state.jobs[jid].to_dict() for jid in state.order],
        "by_state": by_state,
        "draining": state.draining,
        "lost_ranks": sorted(state.lost_ranks),
        "journal_seq": state.last_seq,
        "health": health,
    }
