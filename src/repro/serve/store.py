"""Content-addressed store backing the campaign server.

Three tiers, addressed by the hashes of :mod:`repro.serve.spec`:

* **Results** (disk, ``results/<content_key>.json``): the terminal
  output of a job keyed by its physics content.  A second submission
  of the same problem — same or different tenant — completes
  immediately from the stored result (a *dedup hit*): replaying work
  the fleet has already paid for would be the opposite of throughput.
  Writes are atomic (temp + ``os.replace``) and idempotent, so journal
  replay can re-put a result without harm.
* **Warm starts** (disk, ``warm/<family_key>.json``): converged
  parameter vectors indexed by geometry within a molecule family.
  A new geometry starts from its nearest converged neighbor —
  ``repro.core.scan``'s incremental optimization, applied across jobs
  and tenants instead of within one scan loop.
* **Compiled artifacts** (memory): per content key, the built problem
  (Hamiltonian, pool/generators, reference state) is constructed once
  and shared by every job at that key.  Because the compiled-plan
  (``repro.sim.plan``) and compiled-observable (``repro.ir.compiled``)
  engines memoize on the *object*, sharing the objects is what makes
  their caches hit across jobs — the expensive compile happens once
  per distinct problem per server process.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

import numpy as np

from repro import obs
from repro.serve.spec import JobSpec, resolve_molecule

__all__ = ["ContentStore", "ProblemCache"]


def _atomic_write_json(payload: dict, path: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)


class ContentStore:
    """Disk-backed, content-addressed results + warm-start index."""

    def __init__(self, root: str):
        self.root = root
        self._results_dir = os.path.join(root, "results")
        self._warm_dir = os.path.join(root, "warm")
        os.makedirs(self._results_dir, exist_ok=True)
        os.makedirs(self._warm_dir, exist_ok=True)

    # -- results --------------------------------------------------------------

    def _result_path(self, content_key: str) -> str:
        return os.path.join(self._results_dir, f"{content_key}.json")

    def get_result(self, content_key: str) -> Optional[Dict[str, Any]]:
        path = self._result_path(content_key)
        if not os.path.isfile(path):
            return None
        try:
            with open(path) as fh:
                return json.load(fh)
        except (json.JSONDecodeError, OSError):
            # a torn result write is treated as absent: the journal
            # still holds the lifecycle, the job will simply recompute
            return None

    def put_result(self, content_key: str, result: Dict[str, Any]) -> None:
        """Idempotent: re-putting the same key just overwrites with the
        same content (journal replay safety)."""
        _atomic_write_json(result, self._result_path(content_key))

    def has_result(self, content_key: str) -> bool:
        return os.path.isfile(self._result_path(content_key))

    def num_results(self) -> int:
        return sum(1 for f in os.listdir(self._results_dir) if f.endswith(".json"))

    # -- warm starts ----------------------------------------------------------

    def _warm_path(self, family_key: str) -> str:
        return os.path.join(self._warm_dir, f"{family_key}.json")

    def _load_warm(self, family_key: str) -> List[Dict[str, Any]]:
        path = self._warm_path(family_key)
        if not os.path.isfile(path):
            return []
        try:
            with open(path) as fh:
                entries = json.load(fh)
            return entries if isinstance(entries, list) else []
        except (json.JSONDecodeError, OSError):
            return []

    def add_warm_start(
        self, family_key: str, geometry: Optional[float], parameters: np.ndarray
    ) -> None:
        """Record a converged parameter vector for its geometry (one
        entry per geometry, last write wins)."""
        entries = [
            e for e in self._load_warm(family_key) if e.get("geometry") != geometry
        ]
        entries.append(
            {
                "geometry": geometry,
                "parameters": [float(x) for x in np.atleast_1d(parameters)],
            }
        )
        _atomic_write_json(entries, self._warm_path(family_key))  # type: ignore[arg-type]

    def warm_start(
        self, family_key: str, geometry: Optional[float], num_parameters: int
    ) -> Optional[np.ndarray]:
        """Nearest-geometry converged parameters with a matching length,
        or None if the family is empty."""
        entries = [
            e
            for e in self._load_warm(family_key)
            if len(e.get("parameters", [])) == num_parameters
        ]
        if not entries:
            return None
        if geometry is None:
            best = entries[-1]
        else:
            best = min(
                entries,
                key=lambda e: (
                    abs(e["geometry"] - geometry)
                    if e.get("geometry") is not None
                    else float("inf")
                ),
            )
        return np.asarray(best["parameters"], dtype=float)


class ProblemCache:
    """In-memory cache of built problems, keyed by spec content.

    ``get(spec)`` returns a dict holding the qubit Hamiltonian, the
    reference state, and (per kind) the UCCSD generators or the ADAPT
    pool — built once per distinct content key and shared, so the
    compiled-observable/compiled-plan memoization downstream hits
    across every job of the same problem.
    """

    def __init__(self) -> None:
        self._cache: Dict[str, Dict[str, Any]] = {}
        # second tier, keyed by JobSpec.physics_key(): distinct content
        # keys (different seeds / solver knobs) whose physics agree
        # share ONE problem dict, hence one Hamiltonian object, one
        # ansatz circuit, one compiled plan, one compiled observable —
        # which is what lets the evaluation broker stack their
        # evaluation requests into a single batched sweep.
        self._physics: Dict[str, Dict[str, Any]] = {}
        self.builds = 0
        self.hits = 0
        self.physics_hits = 0
        self.total_bytes = 0
        self._mem = 0

    @staticmethod
    def _problem_bytes(problem: Dict[str, Any]) -> int:
        """Resident bytes of one built problem: the dense reference
        state plus the Hamiltonian's term dictionary (~96 bytes per
        packed (mask, coeff) entry)."""
        total = 0
        for value in problem.values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
        hq = problem.get("hamiltonian")
        if hq is not None:
            total += 96 * getattr(hq, "num_terms", 0)
        return total

    def get(self, spec: JobSpec) -> Dict[str, Any]:
        key = spec.content_key()
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            if obs.enabled():
                obs.inc(
                    "repro_serve_problem_cache_hits_total",
                    help="Problem-cache hits (shared compiled artifacts)",
                )
            return cached
        pkey = spec.physics_key()
        shared = self._physics.get(pkey)
        if shared is not None:
            # same physics under a different content key (e.g. another
            # seed): alias the shared problem, no rebuild, no new bytes
            self._cache[key] = shared
            self.physics_hits += 1
            if obs.enabled():
                obs.inc(
                    "repro_serve_problem_cache_physics_hits_total",
                    help="Problem-cache physics-tier hits (cross-seed sharing)",
                )
            return shared
        problem = self._build(spec)
        self._cache[key] = problem
        self._physics[pkey] = problem
        self.builds += 1
        self.total_bytes += self._problem_bytes(problem)
        if not self._mem:  # late-bound: obs may be enabled after init
            self._mem = obs.mem_track(self, "problem_cache", 0)
        obs.mem_resize(self._mem, self.total_bytes)
        if obs.enabled():
            obs.inc(
                "repro_serve_problem_cache_builds_total",
                help="Distinct problems built by the campaign server",
            )
        return problem

    @staticmethod
    def _build(spec: JobSpec) -> Dict[str, Any]:
        from repro.chem.hamiltonian import build_molecular_hamiltonian
        from repro.chem.pools import uccsd_pool
        from repro.chem.reference import hartree_fock_state
        from repro.chem.scf import run_rhf
        from repro.chem.uccsd import build_uccsd_circuit, uccsd_generators

        with obs.span(
            "serve.build_problem", molecule=spec.molecule, kind=spec.kind
        ):
            molecule = resolve_molecule(spec.molecule, spec.geometry)
            scf = run_rhf(molecule)
            hamiltonian = build_molecular_hamiltonian(scf)
            hq = hamiltonian.to_qubit()
            n_so = hamiltonian.num_spin_orbitals
            n_e = hamiltonian.num_electrons
            problem: Dict[str, Any] = {
                "hamiltonian": hq,
                "num_qubits": n_so,
                "num_electrons": n_e,
                "reference": hartree_fock_state(n_so, n_e),
                "scf_energy": scf.energy,
            }
            if spec.kind == "adapt":
                problem["pool"] = uccsd_pool(n_so, n_e)
            else:
                problem["generators"] = [
                    a for _, a in uccsd_generators(n_so, n_e)
                ]
                # one shared trotterized-UCCSD circuit per physics key:
                # compile_circuit memoizes on the object, so every job
                # aliasing this problem executes the SAME ExecutionPlan
                # — the compatibility unit the evaluation broker
                # batches on
                problem["ansatz"] = build_uccsd_circuit(n_so, n_e).circuit
        return problem

    def __len__(self) -> int:
        return len(self._cache)
