"""Admission control for the campaign server.

A service facing "heavy traffic from millions of users" dies from
unbounded queues long before it dies from slow kernels.  Admission
control keeps every queue bounded and every rejection explicit:

* **Per-tenant quotas** — each tenant gets a bounded number of queued
  and running jobs (:class:`TenantPolicy`); a tenant over quota is
  rejected with backpressure ("retry later"), never silently buffered.
* **Global bound** — the whole server holds at most
  ``global_queue_limit`` queued jobs; beyond it new work is rejected
  regardless of tenant.
* **Priority shedding** — when overload must be resolved from the
  *inside* (e.g. the worker pool shrank after rank losses), the
  lowest-priority queued jobs are shed first, oldest last, so paying
  tenants' campaigns survive a degraded fleet.
* **Circuit breakers** — job classes that keep failing are rejected
  fast for a cooldown (:class:`repro.utils.retry.CircuitBreaker`)
  instead of burning scheduler slots on doomed work.
* **Memory-aware admission** — a job whose predicted peak bytes
  (``repro.serve.spec.estimate_job_memory``) cannot fit any alive
  rank's memory budget is rejected up front with a ``memory: ...``
  reason: a 34-qubit statevector job is 256 GiB of amplitudes, and
  discovering that at dispatch time would waste a scheduler slot and
  an operator page.

Decisions are pure functions of the submitted spec plus current
counts, so they are deterministic and unit-testable without a server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs import events as obs_events

__all__ = ["TenantPolicy", "AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class TenantPolicy:
    """Quota envelope for one tenant (or the default)."""

    max_queued: int = 16
    max_running: int = 4

    def __post_init__(self) -> None:
        if self.max_queued < 0 or self.max_running < 1:
            raise ValueError("max_queued >= 0 and max_running >= 1 required")


@dataclass
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = ""


@dataclass
class AdmissionController:
    """Bounded-queue admission with per-tenant quotas.

    ``tenant_policies`` overrides the default per tenant; unknown
    tenants get ``default_policy``.
    """

    global_queue_limit: int = 64
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    tenant_policies: Dict[str, TenantPolicy] = field(default_factory=dict)

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.tenant_policies.get(tenant, self.default_policy)

    def decide(
        self,
        tenant: str,
        tenant_queued: int,
        total_queued: int,
        draining: bool = False,
        breaker_open: bool = False,
        job_bytes: Optional[int] = None,
        rank_capacity_bytes: Optional[int] = None,
    ) -> AdmissionDecision:
        """Admit or reject one submission given current queue depths.

        When both ``job_bytes`` (the capacity model's predicted peak)
        and ``rank_capacity_bytes`` (the largest alive rank's memory
        budget) are known, a job that cannot fit any rank is rejected
        with a reason starting ``"memory"``.
        """
        decision = self._decide(
            tenant,
            tenant_queued,
            total_queued,
            draining,
            breaker_open,
            job_bytes,
            rank_capacity_bytes,
        )
        if not decision.admitted:
            # rejections are the interesting half of the decision
            # stream; admissions are journaled as job.admitted anyway
            obs_events.emit(
                "admission.rejected",
                tenant=tenant,
                tenant_queued=tenant_queued,
                total_queued=total_queued,
                reason=decision.reason,
            )
        return decision

    def _decide(
        self,
        tenant: str,
        tenant_queued: int,
        total_queued: int,
        draining: bool,
        breaker_open: bool,
        job_bytes: Optional[int] = None,
        rank_capacity_bytes: Optional[int] = None,
    ) -> AdmissionDecision:
        if draining:
            return AdmissionDecision(False, "server is draining; not accepting work")
        if breaker_open:
            return AdmissionDecision(
                False, "circuit breaker open for this job class; retry after cooldown"
            )
        if (
            job_bytes is not None
            and rank_capacity_bytes is not None
            and job_bytes > rank_capacity_bytes
        ):
            return AdmissionDecision(
                False,
                f"memory: job needs ~{job_bytes} bytes but the largest "
                f"alive rank offers {rank_capacity_bytes}; will never fit",
            )
        if total_queued >= self.global_queue_limit:
            return AdmissionDecision(
                False,
                f"server queue full ({total_queued}/{self.global_queue_limit}); "
                "backpressure — retry later",
            )
        policy = self.policy_for(tenant)
        if tenant_queued >= policy.max_queued:
            return AdmissionDecision(
                False,
                f"tenant {tenant!r} queue full ({tenant_queued}/"
                f"{policy.max_queued}); backpressure — retry later",
            )
        return AdmissionDecision(True)

    @staticmethod
    def shed_victims(
        queued: Sequence[object],
        excess: int,
        priority_of=lambda j: getattr(j, "priority", 0),
        age_of=lambda j: getattr(j, "submitted_seq", 0),
    ) -> List[object]:
        """Pick ``excess`` queued jobs to shed: lowest priority first,
        and within a priority the *newest* first (oldest work has
        waited longest and is closest to its deadline)."""
        if excess <= 0:
            return []
        ranked = sorted(queued, key=lambda j: (priority_of(j), -age_of(j)))
        return list(ranked[:excess])
