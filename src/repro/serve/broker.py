"""The evaluation broker: cross-campaign batched execution.

The paper's central scaling lesson is that VQE throughput comes from
amortizing state preparation and expectation evaluation across many
concurrent evaluations, not from accelerating any single one.  Before
this module the campaign server embodied the opposite: each tick ran
one job's evaluations serially, so ten tenants optimizing the same
molecule paid for ten independent statevector sweeps.

The broker turns the server tick into a collect -> batch -> execute ->
resume cycle:

* **collect** — campaigns run in worker threads whose estimator is a
  :class:`BrokeredEstimator`.  Instead of executing plans, it
  *submits* evaluation requests (parameter rows + plan + observable +
  compatibility key) and blocks on a future.
* **batch** — the broker coordinator waits until every live worker is
  either blocked on a future or finished, then drains the pending
  requests and groups them by compatibility key.  Because campaigns
  with the same physics share one problem dict (``ProblemCache``'s
  physics tier), they share one plan object and one observable — one
  group.
* **execute** — each group's parameter rows are stacked into a
  ``(B, P)`` block and run as ONE
  :class:`~repro.sim.batched.BatchedStatevectorSimulator.run_plan`
  sweep over a ``(B, 2^n)`` amplitude block; all B energies come from
  one ``CompiledPauliSum.expectations`` call.
* **resume** — futures resolve, workers wake, campaigns continue to
  their next evaluation.  The coordinator fires the next wave when
  they all block again.

The wave protocol is deterministic by construction: a wave fires only
when *every* live worker has reached a decision point (blocked or
finished), so wave composition does not depend on thread scheduling.
Within a group rows are ordered by (tag, submission sequence), and
batched plan execution is row-independent, so each campaign's energies
are bit-identical regardless of who else shared its batch.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.estimator import Estimator
from repro.sim.batched import BatchedStatevectorSimulator
from repro.sim.expectation import expectation_direct

__all__ = ["EvaluationBroker", "BrokeredEstimator", "OCCUPANCY_BUCKETS"]

# Batch-occupancy histogram buckets: rows per executed group.
OCCUPANCY_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

# Pooled batched simulators kept per broker ((num_qubits, batch) keys).
_SIM_POOL_CAP = 16


class _EvalFuture:
    """Resolution slot for one submission (a block of rows)."""

    __slots__ = ("_broker", "_done", "_values", "_error")

    def __init__(self, broker: "EvaluationBroker"):
        self._broker = broker
        self._done = False
        self._values: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None

    def _set(
        self,
        values: Optional[np.ndarray],
        error: Optional[BaseException] = None,
    ) -> None:
        # called by the coordinator under the broker lock
        self._values = values
        self._error = error
        self._done = True

    def result(self) -> np.ndarray:
        """Block until the coordinator resolves this future.

        Registers the calling worker as *waiting* so the coordinator
        knows when every live worker has reached its decision point.
        """
        br = self._broker
        with br._cond:
            if not self._done:
                br._waiting += 1
                br._cond.notify_all()
                while not self._done:
                    br._cond.wait()
                # _waiting is re-zeroed by the coordinator at resolve
                # time, before any waiter can observe _done
            if self._error is not None:
                raise self._error
            return self._values  # type: ignore[return-value]


class _EvalRequest:
    __slots__ = ("seq", "group_key", "plan", "observable", "rows", "tag", "future")

    def __init__(self, seq, group_key, plan, observable, rows, tag, future):
        self.seq = seq
        self.group_key = group_key
        self.plan = plan
        self.observable = observable
        self.rows = rows
        self.tag = tag
        self.future = future


class EvaluationBroker:
    """Per-server coordinator that batches compatible evaluation
    requests from concurrent campaign workers.

    Lifecycle per tick: the server calls :meth:`worker_started` as it
    spawns each campaign worker, the workers submit through their
    :class:`BrokeredEstimator`, the server thread calls :meth:`pump`
    (which runs waves until every worker has finished), and each
    worker's wrapper calls :meth:`worker_finished` on exit.
    """

    def __init__(self, batch_size: int = 32):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = int(batch_size)
        self._cond = threading.Condition()
        self._pending: List[_EvalRequest] = []
        self._active = 0
        self._waiting = 0
        self._seq = 0
        # (num_qubits, batch) -> simulator; insertion order == LRU
        self._sims: Dict[Tuple[int, int], BatchedStatevectorSimulator] = {}
        # -- stats (coordinator-thread only; read by health snapshots)
        self.waves = 0
        self.groups_executed = 0
        self.batched_evals = 0  # rows executed in groups of >= 2 rows
        self.solo_evals = 0  # rows executed alone (group of 1)
        self.max_occupancy = 0
        self.occupancy_sum = 0

    # -- worker lifecycle -----------------------------------------------------

    def worker_started(self) -> None:
        with self._cond:
            self._active += 1
            self._cond.notify_all()

    def worker_finished(self) -> None:
        with self._cond:
            self._active -= 1
            self._cond.notify_all()

    # -- submission (worker threads) ------------------------------------------

    def submit(
        self,
        plan,
        rows: np.ndarray,
        observable,
        group_key: str,
        tag: str = "",
    ) -> _EvalFuture:
        """Enqueue a block of parameter rows for one (plan, observable).

        All rows of one submission resolve together (one future), so a
        whole finite-difference sweep joins a wave atomically.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        future = _EvalFuture(self)
        with self._cond:
            self._seq += 1
            self._pending.append(
                _EvalRequest(self._seq, group_key, plan, observable, rows, tag, future)
            )
            self._cond.notify_all()
        return future

    # -- coordination (server thread) -----------------------------------------

    def pump(self) -> None:
        """Run batched waves until every registered worker finished.

        Fires a wave exactly when all still-live workers are blocked on
        futures (deterministic lockstep); returns once ``_active`` hits
        zero with nothing pending.
        """
        while True:
            with self._cond:
                while True:
                    if self._active == 0 and not self._pending:
                        return
                    if self._pending and self._waiting >= self._active:
                        break
                    # timeout guards against a missed notify; the
                    # predicate re-check is what matters
                    self._cond.wait(timeout=0.1)
                wave = self._pending
                self._pending = []
            resolved = self._execute_wave(wave)
            with self._cond:
                # every drained request's worker sits in result(); they
                # are all satisfied by this resolution, so the waiting
                # count restarts from zero before any of them wake
                self._waiting = 0
                for future, values, error in resolved:
                    future._set(values, error)
                self._cond.notify_all()

    # -- execution ------------------------------------------------------------

    def _sim(self, num_qubits: int, batch: int) -> BatchedStatevectorSimulator:
        key = (num_qubits, batch)
        sim = self._sims.get(key)
        if sim is None:
            sim = BatchedStatevectorSimulator(
                num_qubits, batch, mem_category="serve.batch"
            )
            while len(self._sims) >= _SIM_POOL_CAP:
                self._sims.pop(next(iter(self._sims)))
            self._sims[key] = sim
        else:
            self._sims.pop(key)
            self._sims[key] = sim  # refresh LRU recency
        return sim

    def _execute_wave(
        self, wave: List[_EvalRequest]
    ) -> List[Tuple[_EvalFuture, Optional[np.ndarray], Optional[BaseException]]]:
        """Group, stack, and execute one wave; never raises — failures
        resolve the affected group's futures with the error."""
        self.waves += 1
        # deterministic grouping: order requests by (key, submission
        # seq); the id() components only split a (mis)use where one
        # group key spans distinct plan/observable objects
        groups: Dict[Tuple[str, int, int], List[_EvalRequest]] = {}
        for req in sorted(wave, key=lambda r: (r.group_key, r.seq)):
            gid = (req.group_key, id(req.plan), id(req.observable))
            groups.setdefault(gid, []).append(req)
        resolved: List[Tuple[_EvalFuture, Optional[np.ndarray], Optional[BaseException]]] = []
        for gid in groups:
            reqs = groups[gid]
            try:
                values = self._execute_group(reqs)
            except Exception as err:  # noqa: BLE001 — forwarded to workers
                resolved.extend((r.future, None, err) for r in reqs)
                continue
            offset = 0
            for req in reqs:
                k = req.rows.shape[0]
                resolved.append((req.future, values[offset : offset + k], None))
                offset += k
        return resolved

    def _execute_group(self, reqs: List[_EvalRequest]) -> np.ndarray:
        plan = reqs[0].plan
        observable = reqs[0].observable
        rows = np.vstack([r.rows for r in reqs])
        total = rows.shape[0]
        if len(reqs) >= 2:
            self.batched_evals += total
        else:
            self.solo_evals += total
        self.groups_executed += 1
        self.occupancy_sum += total
        self.max_occupancy = max(self.max_occupancy, total)
        with obs.span(
            "serve.batch_group",
            rows=total,
            campaigns=len(reqs),
            num_qubits=plan.num_qubits,
        ):
            if obs.enabled():
                obs.observe(
                    "repro_serve_batch_occupancy",
                    float(total),
                    help="Evaluation rows per executed batch group",
                    buckets=OCCUPANCY_BUCKETS,
                )
                obs.inc(
                    "repro_serve_batched_evals_total"
                    if len(reqs) >= 2
                    else "repro_serve_solo_evals_total",
                    amount=float(total),
                    help="Evaluations executed through the broker",
                )
            out = np.empty(total, dtype=float)
            # transient stacked rows + result buffer, priced under the
            # same ledger category as the (B, 2^n) amplitude blocks
            handle = obs.mem_alloc("serve.batch", rows.nbytes + out.nbytes)
            try:
                for start in range(0, total, self.batch_size):
                    chunk = rows[start : start + self.batch_size]
                    sim = self._sim(plan.num_qubits, chunk.shape[0])
                    sim.run_plan(plan, chunk)
                    out[start : start + chunk.shape[0]] = sim.expectations(
                        observable
                    )
            finally:
                obs.mem_free(handle)
        return out

    # -- introspection --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Plain-int broker counters for ``health()``/``status.json``
        (available with observability off, unlike the metric mirrors)."""
        executed = self.batched_evals + self.solo_evals
        return {
            "batch_size": self.batch_size,
            "waves": self.waves,
            "groups_executed": self.groups_executed,
            "batched_evals": self.batched_evals,
            "solo_evals": self.solo_evals,
            "max_occupancy": self.max_occupancy,
            "mean_occupancy": (
                round(self.occupancy_sum / self.groups_executed, 2)
                if self.groups_executed
                else 0.0
            ),
            "evals_total": executed,
        }


class BrokeredEstimator(Estimator):
    """Estimator facade that forwards plan evaluations to a broker.

    Each campaign worker gets its own instance carrying the campaign's
    compatibility key (``JobSpec.physics_key()``) and a tag (the job
    id) that keeps within-group row ordering deterministic.  The
    zero-parameter and bound-circuit paths fall back to direct local
    evaluation — they are not worth a wave.
    """

    name = "brokered"

    def __init__(self, broker: EvaluationBroker, group_key: str, tag: str = ""):
        super().__init__()
        self.broker = broker
        self.group_key = group_key
        self.tag = tag

    def estimate_plan(self, plan, params, observable) -> float:
        self.evaluations += 1
        values = self.broker.submit(
            plan,
            np.asarray(params, dtype=float)[None, :],
            observable,
            self.group_key,
            self.tag,
        ).result()
        return float(values[0])

    def estimate_plan_many(self, plan, rows, observable) -> np.ndarray:
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        self.evaluations += rows.shape[0]
        values = self.broker.submit(
            plan, rows, observable, self.group_key, self.tag
        ).result()
        return np.asarray(values, dtype=float)

    def _evaluate(self, sim, observable) -> float:
        return expectation_direct(sim.statevector(copy=False), observable)
